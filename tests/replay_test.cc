// Capture/replay, checkpoint/resume, and fault-injection robustness:
// journal round trips, digest-gated bit-identity across the config matrix,
// typed input faults in tolerant mode, and quarantine of stalled CoFlows.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "replay/checkpoint.h"
#include "replay/fault.h"
#include "replay/journal.h"
#include "sched/aalo.h"
#include "sched/saath.h"
#include "sim/engine.h"
#include "test_util.h"
#include "trace/synth.h"
#include "workload/dag_source.h"
#include "workload/scenario.h"
#include "workload/sources.h"

namespace saath {
namespace {

using workload::WorkloadEvent;

std::unique_ptr<Scheduler> matrix_scheduler(const std::string& which,
                                            bool incremental) {
  if (which == "saath") {
    SaathConfig cfg;
    cfg.incremental_order = incremental;
    cfg.incremental_spatial = incremental;
    cfg.incremental_backfill = incremental;
    return std::make_unique<SaathScheduler>(cfg);
  }
  AaloConfig cfg;
  cfg.incremental_order = incremental;
  return std::make_unique<AaloScheduler>(cfg);
}

trace::Trace matrix_trace() {
  trace::SynthConfig cfg;
  cfg.num_ports = 32;
  cfg.num_coflows = 90;
  cfg.arrival_span = seconds(6);
  cfg.seed = 41;
  return trace::synth_fb_trace(cfg);
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.coflows.size(), b.coflows.size()) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(replay::result_digest(a), replay::result_digest(b)) << what;
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    const auto& ra = a.coflows[i];
    const auto& rb = b.coflows[i];
    ASSERT_EQ(ra.id, rb.id) << what << " record " << i;
    EXPECT_EQ(ra.finish, rb.finish) << what << " coflow " << ra.id.value;
    ASSERT_EQ(ra.flow_fcts_seconds.size(), rb.flow_fcts_seconds.size());
    for (std::size_t f = 0; f < ra.flow_fcts_seconds.size(); ++f) {
      EXPECT_EQ(ra.flow_fcts_seconds[f], rb.flow_fcts_seconds[f])
          << what << " coflow " << ra.id.value << " flow " << f;
    }
  }
}

// -------------------------------------------------------- record / replay

TEST(RecordReplay, DigestIdentityAcrossConfigAndSchedulerMatrix) {
  const auto t = matrix_trace();
  for (const std::string which : {"saath", "aalo"}) {
    for (const bool skip : {true, false}) {
      for (const bool event : {true, false}) {
        for (const bool incremental : {true, false}) {
          SimConfig cfg;
          cfg.skip_quiescent_epochs = skip;
          cfg.event_driven = event;
          const std::string what = which + (skip ? "/skip" : "/noskip") +
                                   (event ? "/event" : "/scan") +
                                   (incremental ? "/inc" : "/full");

          // Baseline: the same workload run without any recording layer.
          auto base_sched = matrix_scheduler(which, incremental);
          const SimResult base =
              simulate(std::make_shared<workload::TraceSource>(trace::Trace(t)),
                       *base_sched, cfg);

          // Recorded run: the journaling wrapper must not perturb the run.
          std::ostringstream journal;
          auto rec = std::make_shared<replay::RecordingSource>(
              std::make_shared<workload::TraceSource>(trace::Trace(t)),
              journal, cfg, /*seed=*/41);
          auto rec_sched = matrix_scheduler(which, incremental);
          const SimResult recorded = simulate(rec, *rec_sched, cfg);
          expect_identical(base, recorded, what + " record");

          // Replayed run: journal in, recorded config out, same digest.
          std::istringstream in(journal.str());
          auto rs = std::make_shared<replay::ReplaySource>(in);
          EXPECT_EQ(rs->num_ports(), t.num_ports);
          EXPECT_EQ(rs->recorded_seed(), 41);
          EXPECT_EQ(rs->recorded_config().skip_quiescent_epochs, skip);
          EXPECT_EQ(rs->recorded_config().event_driven, event);
          auto rep_sched = matrix_scheduler(which, incremental);
          const SimResult replayed =
              simulate(rs, *rep_sched, rs->recorded_config());
          expect_identical(base, replayed, what + " replay");
        }
      }
    }
  }
}

TEST(RecordReplay, ReactiveDagStreamReplaysBitIdentically) {
  // DagSource releases stages off completion feedback; the journal captures
  // the released events at their recorded instants, so a ReplaySource (which
  // ignores completions) still reproduces the reactive run exactly.
  const auto make_setup = [] {
    return workload::make_scenario("pipeline-dag", workload::ScenarioParams{});
  };
  SaathScheduler s1;
  std::ostringstream journal;
  auto setup = make_setup();
  auto rec = std::make_shared<replay::RecordingSource>(
      setup.source, journal, setup.config, /*seed=*/0);
  const SimResult recorded = simulate(rec, s1, setup.config);
  ASSERT_GT(recorded.coflows.size(), 1u);

  std::istringstream in(journal.str());
  auto rs = std::make_shared<replay::ReplaySource>(in);
  SaathScheduler s2;
  const SimResult replayed = simulate(rs, s2, rs->recorded_config());
  expect_identical(recorded, replayed, "pipeline-dag replay");
}

TEST(RecordReplay, DigestDistinguishesSchedulers) {
  const auto t = matrix_trace();
  SaathScheduler saath;
  AaloScheduler aalo;
  const SimResult a = simulate(trace::Trace(t), saath);
  const SimResult b = simulate(trace::Trace(t), aalo);
  EXPECT_NE(replay::result_digest(a), replay::result_digest(b));
  EXPECT_EQ(replay::result_digest_hex(a).size(), 16u);
}

TEST(RecordReplay, MalformedJournalThrowsNamingTheLine) {
  std::istringstream empty("");
  EXPECT_THROW(replay::ReplaySource{empty}, std::runtime_error);

  std::istringstream bad_magic("NOPE 4 1 x\n");
  EXPECT_THROW(replay::ReplaySource{bad_magic}, std::runtime_error);

  std::istringstream truncated(
      "SAATHJ1 4 1 test\n"
      "C 0x1p30 8000 0 1 1 1 1 500000000000 0 0 3 1\n"
      "A 0 0 -1\n");
  replay::ReplaySource rs(truncated);
  try {
    (void)rs.peek_next_time();
    FAIL() << "truncated A line should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// ----------------------------------------------------- checkpoint / resume

TEST(Checkpoint, SerializationRoundTripsExactly) {
  // Snapshot a run mid-flight, serialize, load, serialize again: the two
  // byte streams must be identical (value-faithful round trip).
  const auto t = matrix_trace();
  SaathScheduler sched;
  SimConfig cfg;
  Engine engine(std::make_shared<workload::TraceSource>(trace::Trace(t)),
                sched, cfg);
  EngineSnapshot snap;
  bool captured = false;
  engine.set_snapshot_hook(40, [&](const EngineSnapshot& s) {
    if (!captured) snap = s;
    captured = true;
  });
  (void)engine.run();
  ASSERT_TRUE(captured);
  ASSERT_FALSE(snap.active.empty());

  std::ostringstream first;
  replay::save_checkpoint(first, snap);
  std::istringstream in(first.str());
  const EngineSnapshot loaded = replay::load_checkpoint(in);
  std::ostringstream second;
  replay::save_checkpoint(second, loaded);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(loaded.scheduler, snap.scheduler);
  EXPECT_EQ(loaded.now, snap.now);
  EXPECT_EQ(loaded.source_events_consumed, snap.source_events_consumed);
  EXPECT_EQ(loaded.active.size(), snap.active.size());
}

TEST(Checkpoint, TruncatedCheckpointIsRejected) {
  const auto t = matrix_trace();
  SaathScheduler sched;
  Engine engine(std::make_shared<workload::TraceSource>(trace::Trace(t)),
                sched, SimConfig{});
  EngineSnapshot snap;
  bool captured = false;
  engine.set_snapshot_hook(40, [&](const EngineSnapshot& s) {
    if (!captured) snap = s;
    captured = true;
  });
  (void)engine.run();
  ASSERT_TRUE(captured);
  std::ostringstream out;
  replay::save_checkpoint(out, snap);
  const std::string full = out.str();
  // A kill mid-checkpoint leaves a prefix without the END sentinel.
  std::istringstream torn(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)replay::load_checkpoint(torn), std::runtime_error);
}

TEST(Checkpoint, ResumeMatchesUninterruptedRunAcrossMatrix) {
  const auto t = matrix_trace();
  for (const std::string which : {"saath", "aalo"}) {
    for (const bool skip : {true, false}) {
      for (const bool event : {true, false}) {
        SimConfig cfg;
        cfg.skip_quiescent_epochs = skip;
        cfg.event_driven = event;
        const std::string what = which + (skip ? "/skip" : "/noskip") +
                                 (event ? "/event" : "/scan");

        // Recorded full run, snapshotting mid-flight.
        std::ostringstream journal;
        auto rec = std::make_shared<replay::RecordingSource>(
            std::make_shared<workload::TraceSource>(trace::Trace(t)), journal,
            cfg, /*seed=*/41);
        auto full_sched = matrix_scheduler(which, true);
        Engine full(rec, *full_sched, cfg);
        EngineSnapshot snap;
        bool captured = false;
        full.set_snapshot_hook(60, [&](const EngineSnapshot& s) {
          if (!captured) snap = s;
          captured = true;
        });
        const SimResult uninterrupted = full.run();
        ASSERT_TRUE(captured) << what;
        ASSERT_GT(snap.source_events_consumed, 0) << what;
        ASSERT_FALSE(snap.active.empty()) << what;

        // Serialize + reload the snapshot (the crash-recovery path reads it
        // from disk, never from the dying process's memory).
        std::ostringstream ckpt;
        replay::save_checkpoint(ckpt, snap);
        std::istringstream ckpt_in(ckpt.str());
        const EngineSnapshot restored = replay::load_checkpoint(ckpt_in);

        // Resume: journal suffix + restored snapshot on a fresh engine.
        std::istringstream in(journal.str());
        auto rs = std::make_shared<replay::ReplaySource>(in);
        rs->skip(restored.source_events_consumed);
        auto res_sched = matrix_scheduler(which, true);
        Engine resumed(rs, *res_sched, rs->recorded_config());
        resumed.restore_snapshot(restored);
        const SimResult resumed_result = resumed.run();
        expect_identical(uninterrupted, resumed_result, what + " resume");
      }
    }
  }
}

TEST(Checkpoint, RestoreRefusesMismatchedScheduler) {
  const auto t = matrix_trace();
  SaathScheduler sched;
  Engine engine(std::make_shared<workload::TraceSource>(trace::Trace(t)),
                sched, SimConfig{});
  EngineSnapshot snap;
  bool captured = false;
  engine.set_snapshot_hook(40, [&](const EngineSnapshot& s) {
    if (!captured) snap = s;
    captured = true;
  });
  (void)engine.run();
  ASSERT_TRUE(captured);

  AaloScheduler other;
  Engine fresh(std::make_shared<workload::TraceSource>(trace::Trace(t)),
               other, SimConfig{});
  EXPECT_THROW(fresh.restore_snapshot(snap), std::invalid_argument);
}

// --------------------------------------------------------- fault injection

TEST(FaultInjection, TolerantModeDegradesToTypedFaults) {
  const auto t = matrix_trace();
  replay::FaultPlan plan;
  plan.seed = 7;
  plan.duplicate_p = 0.2;
  plan.malformed_p = 0.2;
  plan.storm_every = 20;
  plan.storm_size = 4;
  plan.storm_flow_bytes = 1 << 18;
  auto faulty = std::make_shared<replay::FaultySource>(
      std::make_shared<workload::TraceSource>(trace::Trace(t)), plan);

  SaathScheduler sched;
  SimConfig cfg;
  cfg.strict_input = false;
  Engine engine(faulty, sched, cfg);
  const SimResult result = engine.run();
  const EngineStats& stats = engine.stats();

  // Every duplicate and every malformed sibling was dropped as a typed
  // fault; every storm arrival was real work that completed.
  EXPECT_GT(faulty->injected_duplicates(), 0);
  EXPECT_GT(faulty->injected_malformed(), 0);
  EXPECT_GT(faulty->injected_storm_arrivals(), 0);
  EXPECT_EQ(stats.rejected_events,
            faulty->injected_duplicates() + faulty->injected_malformed());
  EXPECT_EQ(static_cast<std::int64_t>(result.coflows.size()),
            static_cast<std::int64_t>(t.coflows.size()) +
                faulty->injected_storm_arrivals());
  ASSERT_FALSE(stats.input_faults.empty());
  bool saw_duplicate = false, saw_malformed = false;
  for (const InputFault& f : stats.input_faults) {
    saw_duplicate |= f.kind == InputFault::Kind::kDuplicateId;
    saw_malformed |= f.kind == InputFault::Kind::kMalformedSpec ||
                     f.kind == InputFault::Kind::kArrivalMismatch;
    EXPECT_FALSE(f.detail.empty());
  }
  EXPECT_TRUE(saw_duplicate);
  EXPECT_TRUE(saw_malformed);
}

TEST(FaultInjection, FaultyRunsAreThemselvesReplayable) {
  const auto t = matrix_trace();
  replay::FaultPlan plan;
  plan.seed = 9;
  plan.duplicate_p = 0.15;
  plan.malformed_p = 0.15;
  SimConfig cfg;
  cfg.strict_input = false;

  std::ostringstream journal;
  auto rec = std::make_shared<replay::RecordingSource>(
      std::make_shared<replay::FaultySource>(
          std::make_shared<workload::TraceSource>(trace::Trace(t)), plan),
      journal, cfg, /*seed=*/9);
  SaathScheduler s1;
  Engine first(rec, s1, cfg);
  const SimResult a = first.run();
  const std::int64_t rejected_a = first.stats().rejected_events;
  ASSERT_GT(rejected_a, 0);

  std::istringstream in(journal.str());
  auto rs = std::make_shared<replay::ReplaySource>(in);
  SaathScheduler s2;
  Engine second(rs, s2, rs->recorded_config());
  const SimResult b = second.run();
  EXPECT_EQ(second.stats().rejected_events, rejected_a);
  expect_identical(a, b, "faulty replay");
}

TEST(FaultInjection, StrictModeStillAbortsOnMalformedInput) {
  // The tolerant path must be opt-in: the default posture keeps the hard
  // contract for trusted generators.
  auto t = testing::make_trace(4, {testing::make_coflow(0, 0, {{0, 1, 100}})});
  t.coflows[0].flows[0].size = -5;
  SaathScheduler sched;
  SimConfig cfg = testing::toy_config();
  Engine engine(std::make_shared<workload::TraceSource>(std::move(t)), sched,
                cfg);
  EXPECT_DEATH((void)engine.run(), "");
}

// ----------------------------------------------------- quarantine / stall

/// Two CoFlows on disjoint port pairs; port 0 is dead (capacity factor 0)
/// from t=1ms, healing at `heal` (kNever = never). CoFlow 0 can make no
/// progress while dead — the stall detector must take it out of the
/// scheduler's way and the run must still finish.
struct StallRig {
  std::unique_ptr<Engine> engine;
  SaathScheduler sched;

  StallRig(SimTime heal, int max_stall, int max_requeue) {
    auto t = testing::make_trace(
        4, {testing::make_coflow(0, 0, {{0, 1, 50}}),
            testing::make_coflow(1, 0, {{2, 3, 2000}})});
    SimConfig cfg = testing::toy_config();
    cfg.max_stall_epochs = max_stall;
    cfg.max_requeue_attempts = max_requeue;
    engine = std::make_unique<Engine>(
        std::make_shared<workload::TraceSource>(std::move(t)), sched, cfg);
    DynamicsEvent down;
    down.time = msec(1);
    down.kind = DynamicsEvent::Kind::kStragglerStart;
    down.port = 0;
    down.capacity_factor = 0.0;
    engine->add_dynamics_event(down);
    if (heal != kNever) {
      DynamicsEvent up;
      up.time = heal;
      up.kind = DynamicsEvent::Kind::kStragglerEnd;
      up.port = 0;
      up.capacity_factor = 1.0;
      engine->add_dynamics_event(up);
    }
  }
};

TEST(Quarantine, StalledCoflowIsDetachedAndRecoversAfterHeal) {
  StallRig rig(/*heal=*/msec(2500), /*max_stall=*/3, /*max_requeue=*/5);
  const SimResult result = rig.engine->run();
  const EngineStats& stats = rig.engine->stats();
  EXPECT_GE(stats.quarantine_events, 1);
  EXPECT_GE(stats.requeue_admissions, 1);
  ASSERT_FALSE(stats.quarantined_coflow_ids.empty());
  EXPECT_EQ(stats.quarantined_coflow_ids.front(), 0);
  EXPECT_TRUE(stats.abandoned_coflow_ids.empty());
  // Both CoFlows finished: the stalled one completed after the heal.
  ASSERT_EQ(result.coflows.size(), 2u);
  EXPECT_GE(result.coflows[0].finish, msec(2500));
}

TEST(Quarantine, RetryExhaustionAbandonsWithoutHangingTheRun) {
  StallRig rig(/*heal=*/kNever, /*max_stall=*/3, /*max_requeue=*/1);
  const SimResult result = rig.engine->run();
  const EngineStats& stats = rig.engine->stats();
  // The dead-port CoFlow burned its retry budget and was abandoned; the run
  // completed with the healthy CoFlow's record only.
  ASSERT_EQ(stats.abandoned_coflow_ids.size(), 1u);
  EXPECT_EQ(stats.abandoned_coflow_ids.front(), 0);
  ASSERT_EQ(result.coflows.size(), 1u);
  EXPECT_EQ(result.coflows.front().id.value, 1);
}

TEST(Quarantine, DisabledDetectorKeepsByteIdentity) {
  // max_stall_epochs = 0 must leave results bit-identical to the
  // pre-quarantine engine — the detector is pay-for-use.
  const auto t = matrix_trace();
  SaathScheduler s1, s2;
  SimConfig plain;
  const SimResult a = simulate(trace::Trace(t), s1, plain);
  SimConfig zero = plain;
  zero.max_stall_epochs = 0;
  zero.max_requeue_attempts = 7;  // irrelevant while disabled
  const SimResult b = simulate(trace::Trace(t), s2, zero);
  expect_identical(a, b, "quarantine disabled");
}

TEST(Quarantine, QuarantinedRunsCheckpointAndResumeBitIdentically) {
  // Uninterrupted run, journaled, snapshotting while the CoFlow is parked.
  auto t = testing::make_trace(
      4, {testing::make_coflow(0, 0, {{0, 1, 50}}),
          testing::make_coflow(1, 0, {{2, 3, 2000}})});
  SimConfig cfg = testing::toy_config();
  cfg.max_stall_epochs = 3;
  cfg.max_requeue_attempts = 5;
  std::ostringstream journal;
  auto rec = std::make_shared<replay::RecordingSource>(
      std::make_shared<workload::TraceSource>(trace::Trace(t)), journal, cfg,
      0);
  SaathScheduler s1;
  Engine full(rec, s1, cfg);
  DynamicsEvent down;
  down.time = msec(1);
  down.kind = DynamicsEvent::Kind::kStragglerStart;
  down.port = 0;
  down.capacity_factor = 0.0;
  full.add_dynamics_event(down);
  DynamicsEvent up = down;
  up.time = msec(2500);
  up.kind = DynamicsEvent::Kind::kStragglerEnd;
  up.capacity_factor = 1.0;
  full.add_dynamics_event(up);
  EngineSnapshot snap;
  bool captured = false;
  full.set_snapshot_hook(1, [&](const EngineSnapshot& s) {
    // Capture the first snapshot that holds a quarantined CoFlow, so the
    // resume path exercises the quarantine sections of the checkpoint.
    if (!captured && !s.quarantined.empty()) {
      snap = s;
      captured = true;
    }
  });
  const SimResult uninterrupted = full.run();
  ASSERT_GE(full.stats().quarantine_events, 1);
  ASSERT_TRUE(captured) << "no snapshot saw the quarantine window";

  std::ostringstream ckpt;
  replay::save_checkpoint(ckpt, snap);
  std::istringstream ckpt_in(ckpt.str());
  const EngineSnapshot restored = replay::load_checkpoint(ckpt_in);
  ASSERT_FALSE(restored.quarantined.empty());

  std::istringstream in(journal.str());
  auto rs = std::make_shared<replay::ReplaySource>(in);
  rs->skip(restored.source_events_consumed);
  SaathScheduler s2;
  Engine resumed(rs, s2, rs->recorded_config());
  // Pre-run dynamics are part of the snapshot (pending_dynamics), not
  // re-registered here.
  resumed.restore_snapshot(restored);
  const SimResult resumed_result = resumed.run();
  expect_identical(uninterrupted, resumed_result, "quarantine resume");
}

// ------------------------------------------------------------ runaway guard

TEST(RunawayGuard, NamesStuckCoflowsBeforeThrowing) {
  // No quarantine: the dead-port CoFlow never finishes and the horizon
  // guard fires. The throw (and stats) must name it.
  auto t = testing::make_trace(
      4, {testing::make_coflow(0, 0, {{0, 1, 50}}),
          testing::make_coflow(1, 0, {{2, 3, 200}})});
  SimConfig cfg = testing::toy_config();
  cfg.max_sim_time = seconds(30);
  SaathScheduler sched;
  Engine engine(std::make_shared<workload::TraceSource>(std::move(t)), sched,
                cfg);
  DynamicsEvent down;
  down.time = msec(1);
  down.kind = DynamicsEvent::Kind::kStragglerStart;
  down.port = 0;
  down.capacity_factor = 0.0;
  engine.add_dynamics_event(down);
  EXPECT_THROW((void)engine.run(), std::runtime_error);
  ASSERT_EQ(engine.stats().stuck_coflow_ids.size(), 1u);
  EXPECT_EQ(engine.stats().stuck_coflow_ids.front(), 0);
}

}  // namespace
}  // namespace saath

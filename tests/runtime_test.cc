#include <gtest/gtest.h>

#include "runtime/jobs.h"
#include "runtime/testbed.h"
#include "sched/aalo.h"
#include "sched/saath.h"
#include "sched/uc_tcp.h"
#include "test_util.h"
#include "trace/synth.h"

namespace saath::runtime {
namespace {

using saath::testing::make_coflow;
using saath::testing::make_trace;
using saath::testing::toy_config;

TEST(Testbed, PipelineDelaysFirstSchedule) {
  // With a 1-epoch pipeline the flow idles for one δ before starting:
  // CCT = 10 s + one epoch.
  auto t = make_trace(2, {make_coflow(0, 0, {{0, 1, 1000}})});
  UcTcpScheduler inner;
  TestbedConfig cfg;
  cfg.sim = toy_config();  // delta = 100 ms
  const auto result = run_testbed(t, inner, cfg);
  ASSERT_EQ(result.coflows.size(), 1u);
  EXPECT_NEAR(result.coflows[0].cct_seconds(), 10.1, 0.02);
}

TEST(Testbed, ZeroDelayMatchesIdealSimulator) {
  auto t = make_trace(2, {make_coflow(0, 0, {{0, 1, 1000}})});
  UcTcpScheduler inner;
  TestbedConfig cfg;
  cfg.sim = toy_config();
  cfg.schedule_delay_epochs = 0;
  const auto testbed = run_testbed(t, inner, cfg);
  UcTcpScheduler fresh;
  const auto ideal = simulate(t, fresh, toy_config());
  EXPECT_NEAR(testbed.coflows[0].cct_seconds(), ideal.coflows[0].cct_seconds(),
              0.001);
}

TEST(Testbed, LongerPipelineCostsMore) {
  auto t = make_trace(2, {make_coflow(0, 0, {{0, 1, 1000}})});
  TestbedConfig fast;
  fast.sim = toy_config();
  fast.schedule_delay_epochs = 1;
  TestbedConfig slow;
  slow.sim = toy_config();
  slow.schedule_delay_epochs = 5;
  UcTcpScheduler i1, i2;
  const auto r_fast = run_testbed(t, i1, fast);
  const auto r_slow = run_testbed(t, i2, slow);
  EXPECT_GT(r_slow.coflows[0].cct_seconds(),
            r_fast.coflows[0].cct_seconds() + 0.3);
}

TEST(Testbed, CoordinatorOutageCoasts) {
  // Two coflows; the outage window covers the second's arrival, so it only
  // gets bandwidth once the coordinator recovers.
  auto t = make_trace(4, {make_coflow(0, 0, {{0, 1, 1000}}),
                          make_coflow(1, seconds(2), {{2, 3, 100}})});
  UcTcpScheduler inner;
  TestbedConfig cfg;
  cfg.sim = toy_config();
  cfg.coordinator_down_from = seconds(1);
  cfg.coordinator_down_until = seconds(5);
  const auto result = run_testbed(t, inner, cfg);
  // C0's schedule was delivered before the outage: it keeps running (~10s).
  EXPECT_NEAR(result.coflows[0].cct_seconds(), 10.1, 0.3);
  // C1 arrived during the outage: it waits until ~5 s for a schedule, so
  // its CCT is ~ (5 - 2) + 1 = 4 s rather than 1 s.
  EXPECT_GT(result.coflows[1].cct_seconds(), 3.5);
  EXPECT_LT(result.coflows[1].cct_seconds(), 4.8);
}

TEST(Testbed, SaathUnderTestbedStillBeatsAalo) {
  const auto t = trace::synth_small_trace(10, 40, 5);
  SimConfig sim;
  sim.port_bandwidth = 1e6;
  sim.delta = msec(20);
  TestbedConfig cfg;
  cfg.sim = sim;
  SaathScheduler saath;
  AaloScheduler aalo;
  const auto r_saath = run_testbed(t, saath, cfg);
  const auto r_aalo = run_testbed(t, aalo, cfg);
  const auto speedups = r_saath.speedup_over(r_aalo);
  EXPECT_GE(percentile(speedups, 50), 0.95);  // no regression in median
}

TEST(Jobs, SpeedupOneWhenSchedulesEqual) {
  SimResult r;
  r.scheduler = "x";
  CoflowRecord rec;
  rec.id = CoflowId{0};
  rec.arrival = 0;
  rec.finish = seconds(2);
  rec.width = 1;
  rec.total_bytes = 10;
  rec.flow_fcts_seconds = {2.0};
  rec.flow_sizes = {10.0};
  r.coflows = {rec};
  const auto jobs = evaluate_jobs(r, r);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].jct_speedup, 1.0);
}

TEST(Jobs, ShuffleHeavyJobsGainMore) {
  // Shuffle twice as fast: a job with f~1 speeds up ~2x, f~0 barely moves.
  SimResult fast, slow;
  fast.scheduler = "fast";
  slow.scheduler = "slow";
  for (int i = 0; i < 2000; ++i) {
    CoflowRecord a;
    a.id = CoflowId{i};
    a.finish = seconds(1);
    a.width = 1;
    a.total_bytes = 1;
    CoflowRecord b = a;
    b.finish = seconds(2);
    fast.coflows.push_back(a);
    slow.coflows.push_back(b);
  }
  const auto jobs = evaluate_jobs(fast, slow);
  const auto by_bucket = summarize_jct(jobs);
  // Monotone: heavier shuffle buckets gain more.
  EXPECT_GT(by_bucket.p50[3], by_bucket.p50[0]);
  EXPECT_GT(by_bucket.p50[3], 1.5);
  EXPECT_LT(by_bucket.p50[0], 1.4);
  EXPECT_GT(by_bucket.p50[kNumShuffleBuckets], 1.0);  // "All"
  for (int b = 0; b <= kNumShuffleBuckets; ++b) {
    EXPECT_GE(by_bucket.p90[static_cast<std::size_t>(b)],
              by_bucket.p50[static_cast<std::size_t>(b)]);
  }
}

TEST(Jobs, BucketLabels) {
  EXPECT_STREQ(shuffle_bucket_label(0), "<25%");
  EXPECT_STREQ(shuffle_bucket_label(3), ">=75%");
  EXPECT_STREQ(shuffle_bucket_label(kNumShuffleBuckets), "All");
}

TEST(Jobs, DeterministicPerSeed) {
  SimResult a, b;
  a.scheduler = "a";
  b.scheduler = "b";
  for (int i = 0; i < 50; ++i) {
    CoflowRecord r;
    r.id = CoflowId{i};
    r.finish = seconds(1 + i % 3);
    r.width = 1;
    r.total_bytes = 1;
    a.coflows.push_back(r);
    CoflowRecord r2 = r;
    r2.finish = seconds(2 + i % 3);
    b.coflows.push_back(r2);
  }
  const auto j1 = evaluate_jobs(a, b);
  const auto j2 = evaluate_jobs(a, b);
  ASSERT_EQ(j1.size(), j2.size());
  for (std::size_t i = 0; i < j1.size(); ++i) {
    EXPECT_DOUBLE_EQ(j1[i].shuffle_fraction, j2[i].shuffle_fraction);
    EXPECT_DOUBLE_EQ(j1[i].jct_speedup, j2[i].jct_speedup);
  }
}

TEST(Jobs, CustomBucketWeights) {
  SimResult a, b;
  a.scheduler = "a";
  b.scheduler = "b";
  for (int i = 0; i < 500; ++i) {
    CoflowRecord r;
    r.id = CoflowId{i};
    r.finish = seconds(1);
    r.width = 1;
    r.total_bytes = 1;
    a.coflows.push_back(r);
    b.coflows.push_back(r);
  }
  JobModelConfig cfg;
  cfg.bucket_weights = {0, 0, 0, 1.0};  // everything shuffle-heavy
  const auto jobs = evaluate_jobs(a, b, cfg);
  for (const auto& j : jobs) {
    EXPECT_EQ(j.bucket, 3);
    EXPECT_GE(j.shuffle_fraction, 0.75);
  }
}

}  // namespace
}  // namespace saath::runtime

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fabric/fabric.h"
#include "sched/saath.h"
#include "sim/engine.h"
#include "test_util.h"

namespace saath {
namespace {

using testing::make_coflow;
using testing::make_trace;
using testing::toy_config;

SaathConfig no_deadline() {
  SaathConfig cfg;
  cfg.deadline_factor = 0;  // isolate the mechanism under test
  return cfg;
}

TEST(Saath, NameReflectsAblation) {
  EXPECT_EQ(SaathScheduler().name(), "saath");
  SaathConfig an_fifo;
  an_fifo.per_flow_threshold = false;
  an_fifo.lcof = false;
  EXPECT_EQ(SaathScheduler(an_fifo).name(), "saath[an+total+fifo]");
}

TEST(Saath, AllOrNoneEqualRates) {
  // A 2x2 mesh gets one equal rate on every flow (D2).
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 2, 100}, {0, 3, 100}, {1, 2, 100}, {1, 3, 100}}));
  SaathScheduler sched(no_deadline());
  Fabric fabric(4, 100.0);
  sched.schedule(0, set.active(), fabric);
  for (const auto& f : set.at(0).flows()) {
    EXPECT_DOUBLE_EQ(f.rate(), 50.0);  // 2 flows per port -> 50 each
  }
}

TEST(Saath, AllOrNoneSkipsWhenAnyPortBusy) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 2, 1000}, {1, 3, 1000}}));
  set.add(make_coflow(1, usec(1), {{1, 4, 1000}, {5, 6, 1000}}));
  SaathConfig cfg = no_deadline();
  cfg.work_conservation = false;
  SaathScheduler sched(cfg);
  Fabric fabric(7, 100.0);
  sched.schedule(0, set.active(), fabric);
  // C0 (fewer contention ties broken by arrival) takes ports 0,1; C1 needs
  // port 1 -> all-or-none refuses, and with WC off it gets nothing at all.
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 100.0);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[1].rate(), 100.0);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 0.0);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[1].rate(), 0.0);
}

TEST(Saath, WorkConservationBackfillsIdlePorts) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 2, 1000}, {1, 3, 1000}}));
  set.add(make_coflow(1, usec(1), {{1, 4, 1000}, {5, 6, 1000}}));
  SaathScheduler sched(no_deadline());
  Fabric fabric(7, 100.0);
  sched.schedule(0, set.active(), fabric);
  // With WC on, C1's flow on the free port 5 runs; the port-1 flow cannot.
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 0.0);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[1].rate(), 100.0);
}

TEST(Saath, Fig4WorkConservationScenario) {
  // Fig 4: C1={P1,P3}, C2={P1,P2}, C3={P2,P3}; every flow takes t.
  // All-or-none alone leaves ports idle (avg CCT 2t); with work
  // conservation C3 backfills and the average drops (paper: 1.67t).
  auto c1 = make_coflow(0, 0, {{0, 3, 100}, {2, 4, 100}});
  auto c2 = make_coflow(1, usec(1), {{0, 5, 100}, {1, 6, 100}});
  auto c3 = make_coflow(2, usec(2), {{1, 7, 100}, {2, 8, 100}});
  auto t = make_trace(9, {c1, c2, c3});

  SaathConfig with_wc = no_deadline();
  SaathConfig without_wc = no_deadline();
  without_wc.work_conservation = false;
  SaathScheduler s1(with_wc), s2(without_wc);
  const auto r_wc = simulate(t, s1, toy_config());
  const auto r_nowc = simulate(t, s2, toy_config());

  const auto avg = [](const SimResult& r) {
    double sum = 0;
    for (const auto& c : r.coflows) sum += c.cct_seconds();
    return sum / static_cast<double>(r.coflows.size());
  };
  EXPECT_LT(avg(r_wc), avg(r_nowc) - 0.2);
  // Without WC the three coflows serialize: 1t, 2t, 3t.
  EXPECT_NEAR(r_nowc.coflows[0].cct_seconds(), 1.0, 0.2);
  EXPECT_NEAR(r_nowc.coflows[1].cct_seconds(), 2.0, 0.25);
  EXPECT_NEAR(r_nowc.coflows[2].cct_seconds(), 3.0, 0.3);
}

TEST(Saath, LcofPrefersLowContention) {
  // C0 (wide) collides with both C1 and C2; C1 and C2 only with C0.
  // Same queue: LCoF schedules C1/C2 (k=1) before C0 (k=2).
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 3, 1000}, {1, 4, 1000}}));  // k=2
  set.add(make_coflow(1, usec(1), {{0, 5, 1000}}));          // k=1
  set.add(make_coflow(2, usec(2), {{1, 6, 1000}}));          // k=1
  SaathConfig cfg = no_deadline();
  cfg.work_conservation = false;
  SaathScheduler sched(cfg);
  Fabric fabric(7, 100.0);
  sched.schedule(0, set.active(), fabric);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 100.0);
  EXPECT_DOUBLE_EQ(set.at(2).flows()[0].rate(), 100.0);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 0.0);
}

TEST(Saath, FifoModeIgnoresContention) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 3, 1000}, {1, 4, 1000}}));
  set.add(make_coflow(1, usec(1), {{0, 5, 1000}}));
  set.add(make_coflow(2, usec(2), {{1, 6, 1000}}));
  SaathConfig cfg = no_deadline();
  cfg.lcof = false;
  cfg.work_conservation = false;
  SaathScheduler sched(cfg);
  Fabric fabric(7, 100.0);
  sched.schedule(0, set.active(), fabric);
  // FIFO: C0 arrived first and takes both ports.
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 100.0);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 0.0);
  EXPECT_DOUBLE_EQ(set.at(2).flows()[0].rate(), 0.0);
}

TEST(Saath, PerFlowThresholdDemotesFaster) {
  // Fig 5: width-4 CoFlow with per-flow threshold Q0/4; once one flow
  // crosses it the whole CoFlow drops to Q1 even though total bytes are
  // far below the aggregate threshold.
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 4, 30 * kMB},
                             {1, 5, 30 * kMB},
                             {2, 6, 30 * kMB},
                             {3, 7, 30 * kMB}}));
  auto& c = set.at(0);
  // Only one flow progressed (e.g. via work conservation): 3MB > 10MB/4.
  c.flows()[0].set_rate(3e6, 0);  // lazy: 3MB accrued by the 1 s schedule

  SaathScheduler pf(no_deadline());
  Fabric fabric(8, 100e6);
  pf.schedule(seconds(1), set.active(), fabric);
  EXPECT_EQ(c.queue_index, 1);

  // Aalo-style total-bytes rule keeps it in Q0 (3MB < 10MB).
  c.queue_index = 0;
  SaathConfig total_cfg = no_deadline();
  total_cfg.per_flow_threshold = false;
  SaathScheduler total(total_cfg);
  total.schedule(seconds(1), set.active(), fabric);
  EXPECT_EQ(c.queue_index, 0);
}

TEST(Saath, HigherQueueServedFirst) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 2, 40 * kMB}}));
  set.add(make_coflow(1, seconds(1), {{0, 3, 1000}}));
  auto& old_coflow = set.at(0);
  old_coflow.flows()[0].set_rate(15e6, 0);  // 15MB by 1 s > Q0 threshold -> Q1
  SaathScheduler sched(no_deadline());
  Fabric fabric(4, 100.0);
  sched.schedule(seconds(1), set.active(), fabric);
  EXPECT_EQ(old_coflow.queue_index, 1);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 100.0);
  // Old coflow only gets the port via work conservation: nothing left.
  EXPECT_DOUBLE_EQ(old_coflow.flows()[0].rate(), 0.0);
}

TEST(Saath, StarvationDeadlinePromotesWithinQueue) {
  testing::StateSet set;
  // C0 is high-contention and would lose under LCoF forever.
  set.add(make_coflow(0, 0, {{0, 3, 1000}, {1, 4, 1000}}));
  set.add(make_coflow(1, usec(1), {{0, 5, 1000}}));
  set.add(make_coflow(2, usec(2), {{1, 6, 1000}}));
  SaathConfig cfg;
  cfg.deadline_factor = 2.0;
  cfg.work_conservation = false;
  SaathScheduler sched(cfg);
  Fabric fabric(7, 100.0);
  // First round sets deadlines.
  sched.schedule(0, set.active(), fabric);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 0.0);
  ASSERT_NE(set.at(0).deadline, kNever);
  // Far past the deadline, C0 must be served first despite max contention.
  // (All three got identical deadlines in the same round; push the
  // low-contention ones out so only C0 is expired, as staggered arrivals
  // would do naturally.)
  const SimTime late = set.at(0).deadline + seconds(1);
  set.at(1).deadline = late + seconds(100);
  set.at(2).deadline = late + seconds(100);
  fabric.reset();
  sched.schedule(late, set.active(), fabric);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 100.0);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 0.0);
}

TEST(Saath, NoDeadlinesWhenDisabled) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 1000}}));
  SaathScheduler sched(no_deadline());
  Fabric fabric(2, 100.0);
  sched.schedule(0, set.active(), fabric);
  EXPECT_EQ(set.at(0).deadline, kNever);
}

TEST(Saath, DynamicsEstimateUsesMedianFinishedLength) {
  testing::StateSet set;
  set.add(make_coflow(0, 0,
                      {{0, 4, 100}, {1, 5, 100}, {2, 6, 100}, {3, 7, 400}}));
  auto& c = set.at(0);
  // Three flows of length 100 finish; the straggler (400) has sent 50.
  c.on_flow_complete(c.flows()[0], seconds(1));
  c.on_flow_complete(c.flows()[1], seconds(1));
  c.on_flow_complete(c.flows()[2], seconds(1));
  c.flows()[3].set_rate(50.0, 0);
  // median finished length = 100; remaining estimate = 100 - 50 = 50.
  EXPECT_DOUBLE_EQ(SaathScheduler::dynamics_remaining_estimate(c, seconds(1)),
                   50.0);
}

TEST(Saath, DynamicsFlagPromotesCoflow) {
  QueueConfig qcfg{.num_queues = 4, .start_threshold = 1000, .growth = 10.0};
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 2, 100'000}, {1, 3, 100'000}}));
  auto& c = set.at(0);
  // Both flows sent 60KB by 1 s: per-flow threshold Q0 = 500, Q1 = 5000,
  // Q2 = 50000: max_flow_sent 60000 >= 50000 -> queue 3.
  for (auto& f : c.flows()) f.set_rate(60'000, 0);
  SaathConfig cfg = no_deadline();
  cfg.queues = qcfg;
  SaathScheduler sched(cfg);
  Fabric fabric(4, 1e6);
  sched.schedule(seconds(1), set.active(), fabric);
  EXPECT_EQ(c.queue_index, 3);

  // One flow finishes; the other is restarted by a failure and flagged.
  c.on_flow_complete(c.flows()[0], seconds(2));
  c.restart_flows_on_port(1, seconds(2));
  c.dynamics_flagged = true;
  // Estimated remaining = median(100000) - 0 = 100000... still deep. Let
  // the restarted flow resend most of it, then expect promotion:
  c.flows()[1].set_rate(99'700, seconds(2));
  fabric.reset();
  sched.schedule(seconds(3), set.active(), fabric);
  // remaining = 100000 - 99700 = 300 -> per-flow Q0 bound 500 -> queue 0.
  EXPECT_EQ(c.queue_index, 0);
}

TEST(Saath, DataUnavailableCoflowSkippedEntirely) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 1000}}));
  set.at(0).data_available = false;
  SaathScheduler sched(no_deadline());
  Fabric fabric(2, 100.0);
  sched.schedule(0, set.active(), fabric);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 0.0);
  EXPECT_DOUBLE_EQ(fabric.send_remaining(0), 100.0);  // slot not wasted
}

TEST(Saath, PhaseStatsAccumulate) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 1000}}));
  SaathScheduler sched;
  Fabric fabric(2, 100.0);
  sched.schedule(0, set.active(), fabric);
  fabric.reset();
  sched.schedule(msec(8), set.active(), fabric);
  EXPECT_EQ(sched.phase_stats().rounds, 2);
  EXPECT_GT(sched.phase_stats().total_ns(), 0);
}

TEST(Saath, SkewedFlowsStillComplete) {
  // All-or-none with skewed flow lengths: the long flow paces the short
  // ones, but everything finishes.
  auto t = make_trace(4, {make_coflow(0, 0, {{0, 2, 100}, {1, 3, 10'000}})});
  SaathScheduler sched;
  const auto result = simulate(t, sched, toy_config());
  ASSERT_EQ(result.coflows.size(), 1u);
  EXPECT_NEAR(result.coflows[0].cct_seconds(), 100.0, 0.5);
}

TEST(Saath, IndexedBackfillEngagesAndMatchesDenseOnDeltaRounds) {
  // Drive precise deltas directly (the engine way) so the incremental
  // schedule path — and with it the port-indexed backfill — actually runs,
  // and compare every flow rate of every round against the dense oracle.
  const auto drive = [](bool backfill, std::vector<Rate>* rates_out,
                        SaathPhaseStats* stats_out) {
    testing::StateSet set;
    // Heavy contention on sender 0/receiver 9: most CoFlows miss admission
    // and live off the backfill.
    for (int i = 0; i < 6; ++i) {
      set.add(make_coflow(i, usec(i),
                          {{0, static_cast<PortIndex>(2 + i), 50'000},
                           {1, 9, 50'000},
                           {static_cast<PortIndex>(2 + i), 9, 50'000}}));
    }
    SaathConfig cfg;
    cfg.incremental_backfill = backfill;
    SaathScheduler sched(cfg);
    Fabric fabric(10, 1000.0);
    RateAssignment rates(10);
    SchedulerDelta delta;
    delta.full = false;
    delta.stream_id = backfill ? 77001 : 77002;
    for (CoflowState* c : set.active()) sched.on_coflow_arrival(*c, 0);
    for (int round = 0; round < 40; ++round) {
      const SimTime now = msec(8) * round;
      fabric.reset();
      rates.begin_epoch(now);
      sched.schedule(now, set.active(), fabric, rates, delta);
      delta.clear_marks();
      for (std::size_t i = 0; i < set.size(); ++i) {
        for (const auto& f : set.at(i).flows()) {
          rates_out->push_back(f.rate());
        }
      }
      if (round == 20) {
        // One mid-stream completion so the delta path sees churn.
        CoflowState& victim = set.at(0);
        FlowState& fl = victim.flows()[0];
        if (!fl.finished()) {
          rates.flow_stopped(fl);
          victim.on_flow_complete(fl, now);
          sched.on_flow_complete(victim, fl, now);
          delta.mark_requeue(&victim);
        }
      }
    }
    *stats_out = sched.phase_stats();
  };

  std::vector<Rate> indexed_rates;
  std::vector<Rate> dense_rates;
  SaathPhaseStats indexed_stats;
  SaathPhaseStats dense_stats;
  drive(true, &indexed_rates, &indexed_stats);
  drive(false, &dense_rates, &dense_stats);

  ASSERT_EQ(indexed_rates.size(), dense_rates.size());
  for (std::size_t i = 0; i < indexed_rates.size(); ++i) {
    ASSERT_EQ(indexed_rates[i], dense_rates[i]) << "rate stream index " << i;
  }
  // The machinery must actually engage — and the oracle must not.
  EXPECT_GT(indexed_stats.backfill_rounds, 0);
  EXPECT_GT(indexed_stats.backfill_missed, 0);
  EXPECT_EQ(dense_stats.backfill_rounds, 0);
  // Rounds with no churn at all replay the recorded conservation stream.
  EXPECT_GT(indexed_stats.conserve_replays, 0);
  EXPECT_EQ(dense_stats.conserve_replays, 0);
}

TEST(Saath, ConserveReplayEngagesOnQuiescentEngineRounds) {
  // With the quiescent-epoch skip off, the engine recomputes every epoch;
  // epochs with no delta replay the whole admission prefix AND the
  // conservation allocations — and the results must equal the dense
  // oracle's exactly.
  const auto t = make_trace(
      6, {make_coflow(0, 0, {{0, 3, 5000}, {1, 4, 5000}}),
          make_coflow(1, usec(1), {{0, 5, 8000}, {2, 3, 8000}}),
          make_coflow(2, usec(2), {{1, 5, 8000}, {2, 4, 8000}})});
  SimConfig cfg = toy_config();
  cfg.skip_quiescent_epochs = false;

  SaathScheduler indexed;
  SaathConfig dense_cfg;
  dense_cfg.incremental_backfill = false;
  SaathScheduler dense(dense_cfg);
  const auto r_indexed = simulate(t, indexed, cfg);
  const auto r_dense = simulate(t, dense, cfg);

  ASSERT_EQ(r_indexed.coflows.size(), r_dense.coflows.size());
  for (std::size_t i = 0; i < r_indexed.coflows.size(); ++i) {
    EXPECT_EQ(r_indexed.coflows[i].finish, r_dense.coflows[i].finish);
    EXPECT_EQ(r_indexed.coflows[i].flow_fcts_seconds,
              r_dense.coflows[i].flow_fcts_seconds);
  }
  EXPECT_GT(indexed.phase_stats().conserve_replays, 0);
  EXPECT_EQ(dense.phase_stats().conserve_replays, 0);
}

TEST(Saath, Fig8LcofLimitationReproduced) {
  // Fig 8: S1 has C2,C1; S2 has C2,C3. C1 and C3 are long but low-
  // contention singles; C2 is wide (both ports). LCoF runs C1/C3 first,
  // delaying C2 — the documented rare sub-optimality. The figure assumes
  // simultaneous arrivals (ties broken by id), so all arrive at t=0.
  auto c1 = make_coflow(0, 0, {{0, 2, 250}});           // 2.5t on S1
  auto c2 = make_coflow(1, 0, {{0, 3, 100}, {1, 4, 100}});  // t on both
  auto c3 = make_coflow(2, 0, {{1, 5, 250}});           // 2.5t on S2
  auto t = make_trace(6, {c1, c2, c3});
  SaathConfig cfg = no_deadline();
  cfg.work_conservation = false;
  SaathScheduler sched(cfg);
  const auto result = simulate(t, sched, toy_config());
  // LCoF: k(C1)=k(C3)=1 < k(C2)=2 -> C1,C3 run [0,2.5), C2 runs [2.5,3.5).
  EXPECT_NEAR(result.coflows[0].cct_seconds(), 2.5, 0.2);
  EXPECT_NEAR(result.coflows[2].cct_seconds(), 2.5, 0.2);
  EXPECT_NEAR(result.coflows[1].cct_seconds(), 3.5, 0.2);
}

}  // namespace
}  // namespace saath

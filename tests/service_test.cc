// Service layer: framing, protocol parse, ingress merge/admission
// semantics, and end-to-end daemon/client digest identity with the offline
// engine — the tentpole invariant of the service subsystem.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "replay/journal.h"
#include "sched/factory.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/ingress.h"
#include "service/protocol.h"
#include "service/source.h"
#include "sim/engine.h"
#include "test_util.h"

namespace saath::service {
namespace {

using workload::WorkloadEvent;

// ------------------------------------------------------------- FrameReader

TEST(FrameReader, TornWritesReassemble) {
  FrameReader fr;
  const std::string wire = "HELLO c 4 w\nA 0 1\nIDLE 3\n";
  std::vector<std::string> frames;
  for (char ch : wire) {
    ASSERT_TRUE(fr.feed(&ch, 1));
    while (auto f = fr.next_frame()) frames.push_back(*f);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "HELLO c 4 w");
  EXPECT_EQ(frames[1], "A 0 1");
  EXPECT_EQ(frames[2], "IDLE 3");
}

TEST(FrameReader, BatchFeedAndCrlf) {
  FrameReader fr;
  const std::string wire = "one\r\ntwo\nthree";  // third frame unterminated
  ASSERT_TRUE(fr.feed(wire.data(), wire.size()));
  auto f1 = fr.next_frame();
  auto f2 = fr.next_frame();
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(*f1, "one");  // \r stripped
  EXPECT_EQ(*f2, "two");
  EXPECT_FALSE(fr.next_frame().has_value());
  ASSERT_TRUE(fr.feed("\n", 1));
  auto f3 = fr.next_frame();
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(*f3, "three");
}

TEST(FrameReader, OversizedOpenTailOverflows) {
  FrameReader fr(64);
  const std::string blob(65, 'x');  // no newline: open tail past the cap
  EXPECT_FALSE(fr.feed(blob.data(), blob.size()));
  EXPECT_TRUE(fr.overflowed());
  EXPECT_FALSE(fr.next_frame().has_value());
}

TEST(FrameReader, OversizedTerminatedFrameOverflows) {
  FrameReader fr(64);
  std::string blob(80, 'y');
  blob += '\n';  // a single feed completes the oversized frame
  (void)fr.feed(blob.data(), blob.size());
  EXPECT_FALSE(fr.next_frame().has_value());
  EXPECT_TRUE(fr.overflowed());
}

// ----------------------------------------------------------- request parse

TEST(Protocol, ParseControlVerbs) {
  EXPECT_EQ(parse_request("HELLO cli 8 fb-replay").kind, Request::Kind::kHello);
  EXPECT_EQ(parse_request("HELLO cli 8 fb-replay").num_ports, 8);
  EXPECT_EQ(parse_request("HELLO cli 8 fb-replay").workload_name, "fb-replay");
  EXPECT_EQ(parse_request("HELLO cli 8").kind, Request::Kind::kBad);
  EXPECT_EQ(parse_request("HELLO cli 0 w").kind, Request::Kind::kBad);
  EXPECT_EQ(parse_request("REACTIVE").kind, Request::Kind::kReactive);
  EXPECT_EQ(parse_request("STATS").kind, Request::Kind::kStats);
  EXPECT_EQ(parse_request("FIN").kind, Request::Kind::kFin);
  EXPECT_EQ(parse_request("SHUTDOWN").kind, Request::Kind::kShutdown);
  EXPECT_EQ(parse_request("NOPE x").kind, Request::Kind::kBad);
  EXPECT_EQ(parse_request("").kind, Request::Kind::kBad);
}

TEST(Protocol, ParseIdleDonesCount) {
  const Request bare = parse_request("IDLE");
  EXPECT_EQ(bare.kind, Request::Kind::kIdle);
  EXPECT_EQ(bare.idle_dones, -1);  // unconditional
  const Request counted = parse_request("IDLE 7");
  EXPECT_EQ(counted.kind, Request::Kind::kIdle);
  EXPECT_EQ(counted.idle_dones, 7);
}

TEST(Protocol, EventFrameIsJournalLine) {
  const auto spec = testing::make_coflow(3, 1000, {{0, 1, 500}});
  const std::string line =
      replay::format_event_line(WorkloadEvent::arrival(spec));
  const Request req = parse_request(line);
  ASSERT_EQ(req.kind, Request::Kind::kEvent);
  EXPECT_EQ(req.event.time, 1000);
  EXPECT_EQ(req.event.coflow.id.value, 3);
  EXPECT_EQ(parse_request("A bogus").kind, Request::Kind::kBad);
}

TEST(Protocol, DoneRoundTrip) {
  CoflowRecord rec;
  rec.id = CoflowId{11};
  rec.job = JobId{2};
  rec.stage = 1;
  rec.arrival = 100;
  rec.finish = 900;
  const auto back = parse_done(format_done(rec));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, rec.id);
  EXPECT_EQ(back->job, rec.job);
  EXPECT_EQ(back->stage, rec.stage);
  EXPECT_EQ(back->arrival, rec.arrival);
  EXPECT_EQ(back->finish, rec.finish);
  EXPECT_FALSE(parse_done("DINE 1 2 3 4 5").has_value());
}

// ----------------------------------------------------------------- ingress

WorkloadEvent arrival_at(std::int64_t id, SimTime t) {
  return WorkloadEvent::arrival(testing::make_coflow(id, t, {{0, 1, 100}}));
}

TEST(Ingress, SortedInsertAndWatermarkFence) {
  IngressQueue q({/*num_ports=*/4, /*expected_clients=*/1});
  const auto sid = q.open_session("c");
  // Out-of-push-order but both beyond the watermark: sorted insert.
  EXPECT_EQ(q.push(sid, arrival_at(2, 100)), Accept::kOk);
  EXPECT_EQ(q.push(sid, arrival_at(1, 50)), Accept::kOk);
  EXPECT_EQ(q.blocking_peek(), 50);
  EXPECT_EQ(q.pop().coflow.id.value, 1);
  EXPECT_EQ(q.blocking_peek(), 100);
  EXPECT_EQ(q.pop().coflow.id.value, 2);
  EXPECT_EQ(q.watermark(), 100);
  // Released events fence later pushes.
  EXPECT_EQ(q.push(sid, arrival_at(3, 60)), Accept::kOutOfOrder);
  // Same-time arrival at the watermark with a non-greater id: tie order.
  EXPECT_EQ(q.push(sid, arrival_at(2, 100)), Accept::kTieOrder);
  EXPECT_EQ(q.push(sid, arrival_at(4, 100)), Accept::kOk);
  EXPECT_EQ(q.push(sid, arrival_at(4, 200)), Accept::kDuplicateId);
  // Malformed: destination port outside the fabric.
  EXPECT_EQ(q.push(sid, WorkloadEvent::arrival(
                            testing::make_coflow(9, 300, {{0, 99, 100}}))),
            Accept::kMalformed);
  q.finish_session(sid);
  EXPECT_EQ(q.push(sid, arrival_at(10, 400)), Accept::kClosed);
  EXPECT_EQ(q.blocking_peek(), 100);  // queued id=4 still releases
  (void)q.pop();
  EXPECT_EQ(q.blocking_peek(), kNever);  // drained
}

TEST(Ingress, ConcurrentProducersMergeDeterministically) {
  // Three producers stream disjoint, per-session monotone partitions of
  // one workload concurrently; the popped stream must come out in content
  // order (time, then id) no matter how the pushes interleave.
  constexpr int kPerProducer = 40;
  constexpr int kProducers = 3;
  std::vector<std::int64_t> popped;
  IngressQueue q({/*num_ports=*/4, /*expected_clients=*/kProducers});
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      const auto sid = q.open_session("p" + std::to_string(p));
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t id = p + kProducers * i;
        ASSERT_EQ(q.push(sid, arrival_at(id, 10 * id)), Accept::kOk);
      }
      q.finish_session(sid);
    });
  }
  while (q.blocking_peek() != kNever) popped.push_back(q.pop().coflow.id.value);
  for (auto& t : producers) t.join();
  ASSERT_EQ(popped.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i], static_cast<std::int64_t>(i));
  }
}

TEST(Ingress, ReactingSessionVetoesMergeUntilCurrentIdle) {
  IngressQueue q({/*num_ports=*/4, /*expected_clients=*/1});
  const auto sid = q.open_session("c");
  q.set_reactive(sid);
  ASSERT_EQ(q.push(sid, arrival_at(0, 0)), Accept::kOk);
  EXPECT_EQ(q.blocking_peek(), 0);
  (void)q.pop();
  q.set_idle(sid, 0);
  // Idle + empty: the engine may advance (reactive kNever semantics).
  EXPECT_EQ(q.blocking_peek(), kNever);
  // A routed DONE flips the session to reacting: even queued events must
  // not release until the client answers with a *current* IDLE.
  q.note_done(sid);
  ASSERT_EQ(q.push(sid, arrival_at(1, 500)), Accept::kOk);
  std::atomic<bool> released{false};
  std::thread consumer([&q, &released] {
    EXPECT_EQ(q.blocking_peek(), 500);
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(released.load());
  q.set_idle(sid, 0);  // stale: one DONE was routed, client saw none
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(released.load());
  q.set_idle(sid, 1);  // current: burst over, barrier lifts
  consumer.join();
  EXPECT_TRUE(released.load());
}

// ------------------------------------------------- end-to-end over sockets

constexpr int kSvcPorts = 6;

std::vector<WorkloadEvent> svc_events(int coflows) {
  std::vector<WorkloadEvent> evs;
  evs.reserve(static_cast<std::size_t>(coflows));
  for (int i = 0; i < coflows; ++i) {
    evs.push_back(arrival_at(i, 50'000 * i));
    evs.back().coflow.flows = {{i % kSvcPorts, (i + 1) % kSvcPorts,
                                100 + 10 * (i % 7)},
                               {(i + 2) % kSvcPorts, (i + 3) % kSvcPorts,
                                60 + 5 * (i % 5)}};
  }
  return evs;
}

std::string socket_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("saath_svc_test_") + tag + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

SimResult offline_run(const std::string& sched, int coflows) {
  auto src = std::make_shared<VectorSource>("svc-test", kSvcPorts,
                                            svc_events(coflows));
  auto scheduler = make_scheduler(sched);
  SimConfig cfg = testing::toy_config();
  apply_scheduler_sim_overrides(sched, cfg);
  Engine engine(src, *scheduler, cfg);
  return engine.run();
}

DaemonConfig daemon_cfg(const std::string& tag, const std::string& sched,
                        int expect_clients) {
  DaemonConfig cfg;
  cfg.address = "unix:" + socket_path(tag.c_str());
  cfg.num_ports = kSvcPorts;
  cfg.scheduler = sched;
  cfg.sim = testing::toy_config();
  cfg.expect_clients = expect_clients;
  return cfg;
}

TEST(ServiceEndToEnd, DigestMatchesOfflineAcrossSchedulers) {
  for (const std::string sched : {"saath", "aalo"}) {
    const SimResult offline = offline_run(sched, 16);
    ServiceDaemon daemon(daemon_cfg("digest_" + sched, sched, 1));
    daemon.start();
    ServiceClient client(ClientOptions{daemon.address()});
    ASSERT_TRUE(client.connect("svc-test", kSvcPorts)) << client.report().error;
    VectorSource src("svc-test", kSvcPorts, svc_events(16));
    ASSERT_TRUE(client.drive(src)) << client.report().error;
    ASSERT_TRUE(client.finish()) << client.report().error;
    const ServiceReport rep = daemon.wait();
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.digest_hex, replay::result_digest_hex(offline)) << sched;
    EXPECT_EQ(client.report().digest_hex, rep.digest_hex);
    EXPECT_EQ(rep.makespan, offline.makespan);
  }
}

TEST(ServiceEndToEnd, InterleavedClientsMatchOffline) {
  const SimResult offline = offline_run("saath", 18);
  ServiceDaemon daemon(daemon_cfg("interleave", "saath", 2));
  daemon.start();
  const auto all = svc_events(18);
  std::vector<WorkloadEvent> even, odd;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? even : odd).push_back(all[i]);
  }
  std::atomic<int> failures{0};
  auto drive_half = [&daemon, &failures](const char* name,
                                         std::vector<WorkloadEvent> evs) {
    ClientOptions co{daemon.address()};
    co.client_name = name;
    ServiceClient client(co);
    VectorSource src("svc-test", kSvcPorts, std::move(evs));
    if (!client.connect("svc-test", kSvcPorts) || !client.drive(src) ||
        !client.finish()) {
      ++failures;
    }
  };
  std::thread ta(drive_half, "even", even);
  std::thread tb(drive_half, "odd", odd);
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
  const ServiceReport rep = daemon.wait();
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.digest_hex, replay::result_digest_hex(offline));
}

TEST(ServiceEndToEnd, DisconnectImpliesFinAndReclaimsSession) {
  const SimResult offline = offline_run("saath", 10);
  ServiceDaemon daemon(daemon_cfg("disco", "saath", 2));
  daemon.start();
  const auto all = svc_events(10);
  {
    // First client registers, streams the earliest event, and vanishes
    // without FIN — the dropped connection must act as an implicit FIN so
    // the run is not wedged waiting on a dead session.
    ClientOptions co{daemon.address()};
    co.client_name = "ghost";
    ServiceClient ghost(co);
    ASSERT_TRUE(ghost.connect("svc-test", kSvcPorts));
    VectorSource head("svc-test", kSvcPorts, {all.front()});
    ASSERT_TRUE(ghost.drive(head));
    // destructor closes the socket: no FIN, no END wait
  }
  ClientOptions co{daemon.address()};
  co.client_name = "rest";
  ServiceClient rest(co);
  ASSERT_TRUE(rest.connect("svc-test", kSvcPorts));
  VectorSource tail("svc-test", kSvcPorts,
                    {all.begin() + 1, all.end()});
  ASSERT_TRUE(rest.drive(tail)) << rest.report().error;
  ASSERT_TRUE(rest.finish()) << rest.report().error;
  const ServiceReport rep = daemon.wait();
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.digest_hex, replay::result_digest_hex(offline));
}

TEST(ServiceEndToEnd, MalformedAndOversizedFramesAreSurvivable) {
  ServiceDaemon daemon(daemon_cfg("malformed", "saath", 1));
  daemon.start();
  ServiceClient client(ClientOptions{daemon.address()});
  ASSERT_TRUE(client.connect("svc-test", kSvcPorts));
  // Unknown verb and a truncated event line: typed REJ, stream stays up.
  ASSERT_TRUE(client.send_line("BOGUS frame"));
  ASSERT_TRUE(client.send_line("A 12"));
  VectorSource src("svc-test", kSvcPorts, svc_events(4));
  ASSERT_TRUE(client.drive(src));
  ASSERT_TRUE(client.finish()) << client.report().error;
  EXPECT_GE(client.report().rejects_seen, 2);
  EXPECT_EQ(client.report().accepted, 4);
  const ServiceReport rep = daemon.wait();
  EXPECT_TRUE(rep.ok) << rep.error;

  // A second daemon for the oversized-frame case: the connection must be
  // dropped (implicit FIN), not buffered without bound.
  ServiceDaemon daemon2(daemon_cfg("oversize", "saath", 1));
  daemon2.start();
  ServiceClient bad(ClientOptions{daemon2.address()});
  ASSERT_TRUE(bad.connect("svc-test", kSvcPorts));
  // The daemon may drop the connection while this is still in flight
  // (overflow detected from the first reads), so the send itself may
  // legitimately fail with a broken pipe.
  (void)bad.send_line(std::string(2u << 20, 'z'));
  char buf[256];
  while (bad.connection().recv_some(buf, sizeof buf) > 0) {
  }  // daemon answers REJ then closes
  const ServiceReport rep2 = daemon2.wait();
  EXPECT_TRUE(rep2.ok) << rep2.error;  // empty run drains cleanly
}

TEST(ServiceEndToEnd, TornJournalRestartReproducesDigest) {
  const SimResult reference = offline_run("saath", 12);
  const auto all = svc_events(12);
  const std::string journal =
      (std::filesystem::temp_directory_path() /
       ("saath_svc_test_journal_" + std::to_string(::getpid()) + ".j"))
          .string();
  std::filesystem::remove(journal);

  {
    // First life: half the script lands in the journal, then the client
    // vanishes and the daemon is shut down mid-run.
    auto cfg = daemon_cfg("restart1", "saath", 1);
    cfg.journal_path = journal;
    ServiceDaemon daemon(cfg);
    daemon.start();
    ClientOptions co{daemon.address()};
    co.wait_end = false;
    ServiceClient client(co);
    ASSERT_TRUE(client.connect("svc-test", kSvcPorts));
    VectorSource half("svc-test", kSvcPorts,
                      {all.begin(), all.begin() + 6});
    ASSERT_TRUE(client.drive(half));
    ASSERT_TRUE(client.finish()) << client.report().error;
    (void)daemon.wait();
  }
  {
    // Simulate the crash artifact: a torn half-written line at the tail.
    std::ofstream torn(journal, std::ios::app);
    torn << "A 999999 77";  // no newline, no flow list
  }
  {
    // Second life: resume truncates the torn tail, replays the journal
    // prefix, and the re-driven full script has its consumed prefix
    // deterministically rejected — the digest equals the uninterrupted
    // offline run bit-for-bit.
    auto cfg = daemon_cfg("restart2", "saath", 1);
    cfg.journal_path = journal;
    cfg.resume = true;
    ServiceDaemon daemon(cfg);
    daemon.start();
    ServiceClient client(ClientOptions{daemon.address()});
    ASSERT_TRUE(client.connect("svc-test", kSvcPorts));
    VectorSource full("svc-test", kSvcPorts, all);
    ASSERT_TRUE(client.drive(full)) << client.report().error;
    ASSERT_TRUE(client.finish()) << client.report().error;
    const ServiceReport rep = daemon.wait();
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.digest_hex, replay::result_digest_hex(reference));
    EXPECT_GT(client.report().rejects_seen, 0);  // re-driven prefix fenced
  }
  std::filesystem::remove(journal);
}

}  // namespace
}  // namespace saath::service

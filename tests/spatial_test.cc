// SpatialIndex / OccupancyIndex: the incremental structures must agree with
// the batch oracle (sched/contention.cc) after EVERY event — arrival, flow
// completion, queue (group) move, CoFlow removal — not just at steady state.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sched/contention.h"
#include "spatial/contention.h"
#include "test_util.h"
#include "trace/synth.h"

namespace saath {
namespace {

using testing::make_coflow;

/// Oracle contention for `active`, grouped by the index's own group map.
std::vector<int> oracle_for(const spatial::SpatialIndex& index,
                            std::span<CoflowState* const> active,
                            int num_ports) {
  std::vector<int> group(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    group[i] = index.group_of(active[i]->id());
  }
  return compute_contention_grouped(active, num_ports, group);
}

void expect_matches_oracle(const spatial::SpatialIndex& index,
                           std::span<CoflowState* const> active, int num_ports,
                           const char* when) {
  ASSERT_EQ(index.size(), active.size()) << when;
  const auto oracle = oracle_for(index, active, num_ports);
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_EQ(index.contention(active[i]->id()), oracle[i])
        << when << ": coflow " << active[i]->id().value;
  }
}

TEST(OccupancyIndex, TracksSlotMembership) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 10}, {0, 2, 10}}));
  set.add(make_coflow(1, 0, {{0, 2, 10}}));

  spatial::OccupancyIndex occ;
  occ.add_coflow(set.at(0));
  occ.add_coflow(set.at(1));
  EXPECT_EQ(occ.members(spatial::sender_bucket(0)).size(), 2u);
  EXPECT_EQ(occ.members(spatial::receiver_bucket(1)).size(), 1u);
  EXPECT_EQ(occ.members(spatial::receiver_bucket(2)).size(), 2u);
  EXPECT_EQ(occ.occupied_slots(CoflowId{0}), 3u);  // sender 0, recv 1, recv 2

  // First 0->1 completion frees receiver 1 but not sender 0 (another flow).
  auto& c0 = set.at(0);
  c0.on_flow_complete(c0.flows()[0], seconds(1));
  const auto delta = occ.on_flow_complete(CoflowId{0}, 0, 1);
  EXPECT_EQ(delta.sender_freed, kInvalidPort);
  EXPECT_EQ(delta.receiver_freed, 1);
  EXPECT_EQ(occ.members(spatial::sender_bucket(0)).size(), 2u);
  EXPECT_TRUE(occ.members(spatial::receiver_bucket(1)).empty());

  // Second completion frees the rest; removal then touches no buckets.
  c0.on_flow_complete(c0.flows()[1], seconds(2));
  const auto delta2 = occ.on_flow_complete(CoflowId{0}, 0, 2);
  EXPECT_EQ(delta2.sender_freed, 0);
  EXPECT_EQ(delta2.receiver_freed, 2);
  EXPECT_EQ(occ.occupied_slots(CoflowId{0}), 0u);
  EXPECT_TRUE(occ.remove_coflow(CoflowId{0}).empty());
  EXPECT_EQ(occ.num_coflows(), 1u);
}

TEST(OccupancyIndex, CollectLiveOccupantsIntersectsBothSides) {
  testing::StateSet set;
  set.add(make_coflow(1, 0, {{0, 1, 10}}));            // sender 0 -> recv 1
  set.add(make_coflow(2, 0, {{2, 3, 10}}));            // sender 2 -> recv 3
  set.add(make_coflow(3, 0, {{0, 3, 10}}));            // sender 0 -> recv 3
  spatial::OccupancyIndex occ;
  for (std::size_t i = 0; i < set.size(); ++i) occ.add_coflow(set.at(i));

  const auto collect = [&occ](std::vector<PortIndex> senders,
                              std::vector<PortIndex> receivers) {
    std::vector<CoflowId> out;
    occ.collect_live_occupants(senders, receivers, out);
    std::vector<std::int64_t> ids;
    for (const CoflowId id : out) ids.push_back(id.value);
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  // A CoFlow is emitted only when it occupies a live sender AND receiver.
  EXPECT_EQ(collect({0}, {1}), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(collect({0}, {3}), (std::vector<std::int64_t>{3}));
  EXPECT_EQ(collect({2}, {1}), (std::vector<std::int64_t>{}));
  EXPECT_EQ(collect({0, 2}, {1, 3}), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(collect({}, {1, 3}), (std::vector<std::int64_t>{}));
  EXPECT_EQ(collect({0, 2}, {}), (std::vector<std::int64_t>{}));

  // Dedup: a wide CoFlow on several live ports is emitted once.
  testing::StateSet wide;
  wide.add(make_coflow(9, 0, {{0, 1, 10}, {2, 3, 10}, {4, 5, 10}}));
  spatial::OccupancyIndex occ2;
  occ2.add_coflow(wide.at(0));
  std::vector<CoflowId> out;
  occ2.collect_live_occupants(std::vector<PortIndex>{0, 2, 4},
                              std::vector<PortIndex>{1, 3, 5}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 9);

  // Completions drop membership: once 0->1 finishes, sender 0 is no longer
  // occupied by coflow 1 and the join reflects it.
  auto& c1 = set.at(0);
  c1.on_flow_complete(c1.flows()[0], seconds(1));
  occ.on_flow_complete(CoflowId{1}, 0, 1);
  EXPECT_EQ(collect({0}, {1}), (std::vector<std::int64_t>{}));
}

TEST(OccupancyIndex, DeltaAgreesWithCoflowState) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 10}, {0, 1, 20}, {2, 1, 30}}));
  auto& c = set.at(0);
  spatial::OccupancyIndex occ;
  occ.add_coflow(c);
  for (int i = 0; i < 3; ++i) {
    auto& f = c.flows()[static_cast<std::size_t>(i)];
    const PortIndex src = f.src();
    const PortIndex dst = f.dst();
    const OccupancyDelta state_delta = c.on_flow_complete(f, seconds(i + 1));
    const auto index_delta = occ.on_flow_complete(c.id(), src, dst);
    EXPECT_EQ(state_delta.sender_freed, index_delta.sender_freed != kInvalidPort);
    EXPECT_EQ(state_delta.receiver_freed,
              index_delta.receiver_freed != kInvalidPort);
    EXPECT_EQ(c.unfinished_on_sender(src) == 0,
              state_delta.sender_freed);
    EXPECT_EQ(c.unfinished_on_receiver(dst) == 0,
              state_delta.receiver_freed);
  }
}

TEST(SpatialIndex, ContentionAcrossLifecycle) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 10}, {2, 3, 10}}));  // ports 0,2 / 1,3
  set.add(make_coflow(1, 0, {{0, 3, 10}}));              // shares 0 and 3
  set.add(make_coflow(2, 0, {{4, 5, 10}}));              // disjoint

  spatial::SpatialIndex index;
  index.add_coflow(set.at(0), 0);
  index.add_coflow(set.at(1), 0);
  index.add_coflow(set.at(2), 0);
  EXPECT_EQ(index.contention(CoflowId{0}), 1);
  EXPECT_EQ(index.contention(CoflowId{1}), 1);
  EXPECT_EQ(index.contention(CoflowId{2}), 0);

  // Moving C1 to another queue removes it from C0's competitor set.
  index.set_group(CoflowId{1}, 3);
  EXPECT_EQ(index.contention(CoflowId{0}), 0);
  EXPECT_EQ(index.contention(CoflowId{1}), 0);
  index.set_group(CoflowId{1}, 0);
  EXPECT_EQ(index.contention(CoflowId{0}), 1);

  // C0's 0->1 flow finishes: they still share receiver... no — C0 keeps
  // sender 2 / receiver 3, C1 holds sender 0 / receiver 3: overlap remains.
  auto& c0 = set.at(0);
  c0.on_flow_complete(c0.flows()[0], seconds(1));
  index.on_flow_complete(c0, c0.flows()[0]);
  EXPECT_EQ(index.contention(CoflowId{0}), 1);
  c0.on_flow_complete(c0.flows()[1], seconds(2));
  index.on_flow_complete(c0, c0.flows()[1]);
  EXPECT_EQ(index.contention(CoflowId{0}), 0);
  EXPECT_EQ(index.contention(CoflowId{1}), 0);

  index.remove_coflow(CoflowId{0});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.contention(CoflowId{1}), 0);
}

TEST(SpatialIndex, StaleOccupancyDetectedByVersion) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 10}, {2, 3, 10}}));
  spatial::SpatialIndex index;
  index.add_coflow(set.at(0), 0);
  EXPECT_TRUE(index.in_sync(set.at(0)));
  // Completion applied to the state only — the index must notice.
  auto& c = set.at(0);
  c.on_flow_complete(c.flows()[0], seconds(1));
  EXPECT_FALSE(index.in_sync(set.at(0)));
}

/// Randomized event-stream equivalence: every mutation the scheduler can
/// feed the index (arrival, flow completion, group move, removal), in
/// random order over a synthetic workload, checked against the oracle
/// after each step.
TEST(SpatialIndex, RandomEventStreamMatchesOracle) {
  for (const std::uint64_t seed : {7u, 21u, 63u}) {
    constexpr int kPorts = 12;
    const auto trace = trace::synth_small_trace(kPorts, 30, seed);
    Rng rng(seed * 977 + 13);

    spatial::SpatialIndex index;
    std::vector<std::unique_ptr<CoflowState>> states;
    std::vector<CoflowState*> tracked;
    std::size_t next_spec = 0;
    std::int64_t next_flow = 0;

    const auto add_next = [&] {
      const auto& spec = trace.coflows[next_spec++];
      states.push_back(std::make_unique<CoflowState>(spec, FlowId{next_flow}));
      next_flow += spec.width();
      tracked.push_back(states.back().get());
      index.add_coflow(*tracked.back(), static_cast<int>(rng.uniform_int(0, 3)));
    };
    // Seed with a handful so events have neighbors to hit.
    for (int i = 0; i < 5; ++i) add_next();

    for (int step = 0; step < 400; ++step) {
      const int op = static_cast<int>(rng.uniform_int(0, 9));
      if (op <= 1 && next_spec < trace.coflows.size()) {
        add_next();
      } else if (op <= 3 && !tracked.empty()) {
        CoflowState* c =
            tracked[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(tracked.size()) - 1))];
        index.set_group(c->id(), static_cast<int>(rng.uniform_int(0, 3)));
      } else if (op == 4 && !tracked.empty()) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(tracked.size()) - 1));
        index.remove_coflow(tracked[pos]->id());
        tracked.erase(tracked.begin() + static_cast<long>(pos));
      } else if (!tracked.empty()) {
        // Complete a random unfinished flow of a random tracked CoFlow.
        CoflowState* c =
            tracked[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(tracked.size()) - 1))];
        std::vector<FlowState*> open;
        for (auto& f : c->flows()) {
          if (!f.finished()) open.push_back(&f);
        }
        if (open.empty()) continue;
        FlowState* f = open[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(open.size()) - 1))];
        c->on_flow_complete(*f, msec(step + 1));
        index.on_flow_complete(*c, *f);
      }
      expect_matches_oracle(index, tracked, kPorts, "after event");
      if (::testing::Test::HasFailure()) return;
    }
  }
}

}  // namespace
}  // namespace saath

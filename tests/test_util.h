// Shared helpers for building small deterministic scenarios in tests.
#pragma once

#include <initializer_list>
#include <memory>
#include <vector>

#include "coflow/coflow.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace saath::testing {

/// Builds a CoflowSpec from (src, dst, bytes) triples.
inline CoflowSpec make_coflow(std::int64_t id, SimTime arrival,
                              std::initializer_list<FlowSpec> flows) {
  CoflowSpec c;
  c.id = CoflowId{id};
  c.arrival = arrival;
  c.flows = flows;
  return c;
}

inline trace::Trace make_trace(int num_ports,
                               std::vector<CoflowSpec> coflows) {
  trace::Trace t;
  t.name = "test";
  t.num_ports = num_ports;
  t.coflows = std::move(coflows);
  t.normalize();
  return t;
}

/// A fabric-friendly config: 100 bytes/sec ports and 1 s epochs make the
/// toy-figure scenarios exact integer arithmetic.
inline SimConfig toy_config() {
  SimConfig cfg;
  cfg.port_bandwidth = 100.0;  // bytes/sec
  cfg.delta = msec(100);
  return cfg;
}

/// CoflowState wrapper for scheduler-level unit tests (no engine).
class StateSet {
 public:
  void add(const CoflowSpec& spec) {
    std::int64_t first = 0;
    for (const auto& s : states_) first += s->width();
    states_.push_back(std::make_unique<CoflowState>(spec, FlowId{first}));
    ptrs_.push_back(states_.back().get());
  }

  [[nodiscard]] std::span<CoflowState* const> active() const { return ptrs_; }
  [[nodiscard]] CoflowState& at(std::size_t i) { return *states_[i]; }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

 private:
  std::vector<std::unique_ptr<CoflowState>> states_;
  std::vector<CoflowState*> ptrs_;
};

}  // namespace saath::testing

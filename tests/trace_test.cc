#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"
#include "trace/fb_format.h"
#include "trace/synth.h"
#include "trace/trace.h"

namespace saath::trace {
namespace {

TEST(Trace, NormalizeSortsAndReassignsIds) {
  Trace t;
  t.num_ports = 4;
  t.coflows.push_back(testing::make_coflow(7, seconds(5), {{0, 1, 10}}));
  t.coflows.push_back(testing::make_coflow(3, seconds(1), {{2, 3, 10}}));
  t.normalize();
  EXPECT_EQ(t.coflows[0].arrival, seconds(1));
  EXPECT_EQ(t.coflows[0].id, CoflowId{0});
  EXPECT_EQ(t.coflows[1].id, CoflowId{1});
}

TEST(Trace, NormalizeRejectsBadPorts) {
  Trace t;
  t.num_ports = 2;
  t.coflows.push_back(testing::make_coflow(0, 0, {{0, 5, 10}}));
  EXPECT_THROW(t.normalize(), std::invalid_argument);
}

TEST(Trace, NormalizeRejectsEmptyCoflow) {
  Trace t;
  t.num_ports = 2;
  t.coflows.push_back({});
  t.coflows[0].id = CoflowId{0};
  EXPECT_THROW(t.normalize(), std::invalid_argument);
}

TEST(Trace, TotalBytes) {
  Trace t;
  t.num_ports = 3;
  t.coflows.push_back(testing::make_coflow(0, 0, {{0, 1, 100}, {1, 2, 200}}));
  t.coflows.push_back(testing::make_coflow(1, 0, {{2, 0, 300}}));
  EXPECT_EQ(t.total_bytes(), 600);
}

TEST(Trace, ScaledArrivalsSpeedsUp) {
  Trace t;
  t.num_ports = 2;
  t.coflows.push_back(testing::make_coflow(0, seconds(10), {{0, 1, 10}}));
  t.normalize();
  const Trace fast = t.scaled_arrivals(2.0);  // 2x faster arrivals
  EXPECT_EQ(fast.coflows[0].arrival, seconds(5));
  const Trace slow = t.scaled_arrivals(0.5);
  EXPECT_EQ(slow.coflows[0].arrival, seconds(20));
}

TEST(Trace, EqualFlowLengthDetection) {
  EXPECT_TRUE(has_equal_flow_lengths(
      testing::make_coflow(0, 0, {{0, 1, 100}, {1, 2, 100}})));
  EXPECT_FALSE(has_equal_flow_lengths(
      testing::make_coflow(0, 0, {{0, 1, 100}, {1, 2, 250}})));
  EXPECT_TRUE(has_equal_flow_lengths(testing::make_coflow(0, 0, {{0, 1, 5}})));
}

TEST(FbFormat, ParsesMeshExpansion) {
  // 1 coflow: 2 mappers (ports 0,1), 2 reducers (2:10MB, 3:30MB).
  std::istringstream in(
      "4 1\n"
      "0 1000 2 0 1 2 2:10 3:30\n");
  const Trace t = parse_fb_trace(in);
  EXPECT_EQ(t.num_ports, 4);
  ASSERT_EQ(t.coflows.size(), 1u);
  const auto& c = t.coflows[0];
  EXPECT_EQ(c.arrival, msec(1000));
  ASSERT_EQ(c.width(), 4);  // 2x2 mesh
  // Each mapper sends half of each reducer's total.
  Bytes to_r2 = 0, to_r3 = 0;
  for (const auto& f : c.flows) {
    if (f.dst == 2) to_r2 += f.size;
    if (f.dst == 3) to_r3 += f.size;
  }
  EXPECT_EQ(to_r2, 10 * kMB);
  EXPECT_EQ(to_r3, 30 * kMB);
}

TEST(FbFormat, ShiftsOneBasedPorts) {
  // Benchmark files number ports 1..N.
  std::istringstream in(
      "2 1\n"
      "0 0 1 1 1 2:5\n");
  const Trace t = parse_fb_trace(in);
  ASSERT_EQ(t.coflows[0].flows.size(), 1u);
  EXPECT_EQ(t.coflows[0].flows[0].src, 0);
  EXPECT_EQ(t.coflows[0].flows[0].dst, 1);
}

TEST(FbFormat, RejectsMalformedHeader) {
  std::istringstream in("not a number\n");
  EXPECT_THROW(parse_fb_trace(in), std::runtime_error);
}

TEST(FbFormat, RejectsMissingReducerColon) {
  std::istringstream in(
      "2 1\n"
      "0 0 1 0 1 1\n");
  EXPECT_THROW(parse_fb_trace(in), std::runtime_error);
}

TEST(FbFormat, RejectsTruncatedCoflowLine) {
  std::istringstream in(
      "2 2\n"
      "0 0 1 0 1 1:5\n");
  EXPECT_THROW(parse_fb_trace(in), std::runtime_error);
}

TEST(FbFormat, RoundTripPreservesStructure) {
  std::istringstream in(
      "4 2\n"
      "0 0 2 0 1 2 2:10 3:30\n"
      "1 2000 1 3 1 0:5\n");
  const Trace t = parse_fb_trace(in);
  std::ostringstream out;
  write_fb_trace(out, t);
  std::istringstream in2(out.str());
  const Trace t2 = parse_fb_trace(in2);
  ASSERT_EQ(t2.coflows.size(), t.coflows.size());
  for (std::size_t i = 0; i < t.coflows.size(); ++i) {
    EXPECT_EQ(t2.coflows[i].width(), t.coflows[i].width());
    EXPECT_NEAR(static_cast<double>(t2.coflows[i].total_bytes()),
                static_cast<double>(t.coflows[i].total_bytes()),
                static_cast<double>(t.coflows[i].width()));
    EXPECT_EQ(t2.coflows[i].arrival, t.coflows[i].arrival);
  }
}

TEST(Synth, FbTraceMatchesPublishedShape) {
  const Trace t = synth_fb_trace();
  EXPECT_EQ(t.num_ports, 150);
  EXPECT_EQ(static_cast<int>(t.coflows.size()), 526);
  const TraceStats s = compute_stats(t);
  // Fig 2(a)/(b): 23% single-flow, 50% multi equal, 27% multi unequal.
  // The unequal mass runs a few points low: single-reducer meshes force an
  // equal split regardless of the drawn skew (see synth.cc).
  EXPECT_NEAR(s.frac_single_flow, 0.23, 0.06);
  EXPECT_NEAR(s.frac_multi_equal, 0.50, 0.08);
  EXPECT_NEAR(s.frac_multi_unequal, 0.27, 0.10);
}

TEST(Synth, FbTraceBinMassNearTable1) {
  const Trace t = synth_fb_trace();
  std::array<int, 4> bins{};
  for (const auto& c : t.coflows) {
    const bool small = c.total_bytes() <= 100 * kMB;
    const bool narrow = c.width() <= 10;
    if (small && narrow) ++bins[0];
    if (small && !narrow) ++bins[1];
    if (!small && narrow) ++bins[2];
    if (!small && !narrow) ++bins[3];
  }
  const double n = static_cast<double>(t.coflows.size());
  EXPECT_NEAR(bins[0] / n, 0.54, 0.10);  // paper: 54%
  EXPECT_NEAR(bins[1] / n, 0.14, 0.08);  // 14%
  EXPECT_NEAR(bins[2] / n, 0.12, 0.08);  // 12%
  EXPECT_NEAR(bins[3] / n, 0.20, 0.08);  // 20%
}

TEST(Synth, DeterministicPerSeed) {
  const Trace a = synth_fb_trace();
  const Trace b = synth_fb_trace();
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].arrival, b.coflows[i].arrival);
    EXPECT_EQ(a.coflows[i].total_bytes(), b.coflows[i].total_bytes());
  }
  SynthConfig other;
  other.seed = 99;
  const Trace c = synth_fb_trace(other);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.coflows.size(), c.coflows.size());
       ++i) {
    if (a.coflows[i].total_bytes() != c.coflows[i].total_bytes()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Synth, ArrivalsSortedWithinSpan) {
  SynthConfig cfg;
  cfg.arrival_span = seconds(30);
  const Trace t = synth_fb_trace(cfg);
  SimTime prev = 0;
  for (const auto& c : t.coflows) {
    EXPECT_GE(c.arrival, prev);
    EXPECT_LE(c.arrival, seconds(30));
    prev = c.arrival;
  }
}

TEST(Synth, OspTraceIsBusierThanFb) {
  const Trace fb = synth_fb_trace();
  const Trace osp = synth_osp_trace();
  EXPECT_EQ(osp.num_ports, 100);
  EXPECT_EQ(static_cast<int>(osp.coflows.size()), 1000);
  // Arrival rate per port (coflows / sec / port): OSP must exceed FB — the
  // §6.1 property explaining the bigger P90 win.
  const double fb_span = to_seconds(fb.coflows.back().arrival);
  const double osp_span = to_seconds(osp.coflows.back().arrival);
  const double fb_rate = 526.0 / fb_span / 150.0;
  const double osp_rate = 1000.0 / osp_span / 100.0;
  EXPECT_GT(osp_rate, 1.5 * fb_rate);
}

TEST(Synth, SmallTraceRespectsBounds) {
  const Trace t = synth_small_trace(10, 20, 3);
  EXPECT_EQ(t.num_ports, 10);
  EXPECT_EQ(static_cast<int>(t.coflows.size()), 20);
  for (const auto& c : t.coflows) {
    for (const auto& f : c.flows) {
      EXPECT_GE(f.src, 0);
      EXPECT_LT(f.src, 10);
      EXPECT_GE(f.dst, 0);
      EXPECT_LT(f.dst, 10);
      EXPECT_GT(f.size, 0);
    }
  }
}

TEST(Synth, WidthsNeverExceedPortMesh) {
  const Trace t = synth_fb_trace();
  for (const auto& c : t.coflows) {
    EXPECT_LE(c.width(), 150 * 150);
    EXPECT_GE(c.width(), 1);
  }
}

}  // namespace
}  // namespace saath::trace

#include <gtest/gtest.h>

#include "fabric/fabric.h"
#include "sched/uc_tcp.h"
#include "sim/engine.h"
#include "test_util.h"
#include "trace/synth.h"

namespace saath {
namespace {

using testing::make_coflow;
using testing::make_trace;
using testing::toy_config;

TEST(UcTcp, AllFlowsActiveImmediately) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 2, 1000}}));
  set.add(make_coflow(1, usec(1), {{1, 3, 1000}}));
  UcTcpScheduler sched;
  Fabric fabric(4, 100.0);
  sched.schedule(0, set.active(), fabric);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 100.0);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 100.0);
}

TEST(UcTcp, FairShareNotPriority) {
  // Unlike every queue-based policy, contending flows split the port.
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 10'000}}));
  set.add(make_coflow(1, usec(1), {{0, 2, 100}}));
  UcTcpScheduler sched;
  Fabric fabric(3, 100.0);
  sched.schedule(0, set.active(), fabric);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 50.0);
  EXPECT_DOUBLE_EQ(set.at(1).flows()[0].rate(), 50.0);
}

TEST(UcTcp, ShortCoflowSuffersUnderFairShare) {
  // The §6.1 story: without prioritization a short coflow is dragged out
  // by a long one. Short coflow alone would finish in 1 s; sharing with
  // the long one it takes ~2 s.
  auto t = make_trace(3, {make_coflow(0, 0, {{0, 1, 10'000}}),
                          make_coflow(1, 0, {{0, 2, 100}})});
  UcTcpScheduler sched;
  const auto result = simulate(t, sched, toy_config());
  EXPECT_NEAR(result.coflows[1].cct_seconds(), 2.0, 0.1);
}

TEST(UcTcp, RespectsStragglerCapacity) {
  testing::StateSet set;
  set.add(make_coflow(0, 0, {{0, 1, 1000}}));
  UcTcpScheduler sched;
  Fabric fabric(2, 100.0);
  fabric.set_port_capacity_factor(0, 0.2);
  fabric.reset();
  sched.schedule(0, set.active(), fabric);
  EXPECT_DOUBLE_EQ(set.at(0).flows()[0].rate(), 20.0);
}

TEST(UcTcp, ManyFlowsCapacityInvariant) {
  const auto t = trace::synth_small_trace(5, 15, 23);
  UcTcpScheduler sched;
  SimConfig cfg;
  cfg.port_bandwidth = 1e6;
  cfg.delta = msec(50);
  cfg.check_capacity = true;  // engine throws on violation
  const auto result = simulate(t, sched, cfg);
  EXPECT_EQ(result.coflows.size(), t.coflows.size());
}

}  // namespace
}  // namespace saath

// Streaming workload API: source ordering, materialized-vs-streamed
// bit-identity, combinators, reactive DAG release, result sinks, and the
// scenario registry.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/aalo.h"
#include "sched/saath.h"
#include "sim/engine.h"
#include "test_util.h"
#include "trace/synth.h"
#include "workload/combinators.h"
#include "workload/dag_source.h"
#include "workload/scenario.h"
#include "workload/sink.h"
#include "workload/sources.h"

namespace saath {
namespace {

using workload::WorkloadEvent;

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.coflows.size(), b.coflows.size()) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    const auto& ra = a.coflows[i];
    const auto& rb = b.coflows[i];
    ASSERT_EQ(ra.id, rb.id) << what << " record " << i;
    EXPECT_EQ(ra.arrival, rb.arrival) << what << " coflow " << ra.id.value;
    EXPECT_EQ(ra.finish, rb.finish) << what << " coflow " << ra.id.value;
    EXPECT_EQ(ra.width, rb.width) << what << " coflow " << ra.id.value;
    ASSERT_EQ(ra.flow_fcts_seconds.size(), rb.flow_fcts_seconds.size())
        << what << " coflow " << ra.id.value;
    for (std::size_t f = 0; f < ra.flow_fcts_seconds.size(); ++f) {
      EXPECT_EQ(ra.flow_fcts_seconds[f], rb.flow_fcts_seconds[f])
          << what << " coflow " << ra.id.value << " flow " << f;
    }
  }
}

/// Schedulers of the identity matrix: {saath, aalo} x incremental order
/// on/off (the oracle pair of the delta-driven phase).
std::unique_ptr<Scheduler> matrix_scheduler(const std::string& which,
                                            bool incremental) {
  if (which == "saath") {
    SaathConfig cfg;
    cfg.incremental_order = incremental;
    cfg.incremental_spatial = incremental;
    cfg.incremental_backfill = incremental;
    return std::make_unique<SaathScheduler>(cfg);
  }
  AaloConfig cfg;
  cfg.incremental_order = incremental;
  return std::make_unique<AaloScheduler>(cfg);
}

trace::Trace matrix_trace() {
  trace::SynthConfig cfg;
  cfg.num_ports = 40;
  cfg.num_coflows = 120;
  cfg.arrival_span = seconds(8);
  cfg.seed = 77;
  return trace::synth_fb_trace(cfg);
}

// ------------------------------------------------------------ TraceSource

TEST(TraceSource, EmitsArrivalsInArrivalIdOrder) {
  auto t = testing::make_trace(
      4, {testing::make_coflow(0, msec(20), {{0, 1, 100}}),
          testing::make_coflow(1, msec(5), {{1, 2, 100}}),
          testing::make_coflow(2, msec(20), {{2, 3, 100}}),
          testing::make_coflow(3, msec(1), {{0, 3, 100}})});
  workload::TraceSource src(t);
  SimTime last = 0;
  std::int64_t last_id = -1;
  int count = 0;
  while (src.peek_next_time() != kNever) {
    const SimTime peek = src.peek_next_time();
    WorkloadEvent ev = src.next();
    EXPECT_EQ(ev.kind, WorkloadEvent::Kind::kArrival);
    EXPECT_EQ(ev.time, peek);
    EXPECT_GE(ev.time, last);
    if (ev.time == last) {
      EXPECT_GT(ev.coflow.id.value, last_id);
    }
    last = ev.time;
    last_id = ev.coflow.id.value;
    ++count;
  }
  EXPECT_EQ(count, 4);
}

TEST(TraceSource, SharedAndOwnedEmitTheSameStream) {
  const auto t = matrix_trace();
  auto shared = std::make_shared<const trace::Trace>(t);
  workload::TraceSource owned{trace::Trace(t)};
  workload::TraceSource aliased{shared};
  while (owned.peek_next_time() != kNever) {
    ASSERT_EQ(owned.peek_next_time(), aliased.peek_next_time());
    const auto a = owned.next();
    const auto b = aliased.next();
    ASSERT_EQ(a.coflow.id, b.coflow.id);
    ASSERT_EQ(a.coflow.flows.size(), b.coflow.flows.size());
  }
  EXPECT_EQ(aliased.peek_next_time(), kNever);
}

// ------------------------------------ materialized vs streamed identity

TEST(StreamIdentity, FbTraceAcrossSkipEventOrderMatrix) {
  const auto t = matrix_trace();
  for (const std::string which : {"saath", "aalo"}) {
    for (const bool incremental : {true, false}) {
      for (const bool skip : {true, false}) {
        for (const bool event : {true, false}) {
          SimConfig cfg;
          cfg.skip_quiescent_epochs = skip;
          cfg.event_driven = event;
          auto s1 = matrix_scheduler(which, incremental);
          auto s2 = matrix_scheduler(which, incremental);
          const auto materialized = simulate(t, *s1, cfg);
          const auto streamed = simulate(
              std::make_shared<workload::TraceSource>(trace::Trace(t)), *s2,
              cfg);
          expect_identical(
              materialized, streamed,
              which + (incremental ? "/inc" : "/oracle") +
                  (skip ? "/skip" : "/noskip") + (event ? "/event" : "/scan"));
        }
      }
    }
  }
}

TEST(StreamIdentity, DynamicsAndDataGatesAsStreamEvents) {
  const int ports = 16;
  auto t = testing::make_trace(
      ports, {testing::make_coflow(0, 0, {{0, 1, 40 * kMB}, {2, 3, 40 * kMB}}),
              testing::make_coflow(1, msec(50), {{4, 5, 30 * kMB}}),
              testing::make_coflow(2, msec(100),
                                   {{0, 5, 20 * kMB}, {6, 7, 20 * kMB}}),
              testing::make_coflow(3, msec(200), {{2, 7, 25 * kMB}}),
              testing::make_coflow(4, msec(300), {{8, 9, 10 * kMB}})});
  const std::vector<DynamicsEvent> dynamics = {
      {msec(120), DynamicsEvent::Kind::kStragglerStart, 0, 0.25},
      {msec(150), DynamicsEvent::Kind::kNodeFailure, 2, 1.0},
      {msec(400), DynamicsEvent::Kind::kStragglerEnd, 0, 1.0},
  };
  const std::map<std::int64_t, SimTime> gates = {{2, msec(260)},
                                                 {4, msec(500)}};

  for (const std::string which : {"saath", "aalo"}) {
    for (const bool skip : {true, false}) {
      for (const bool event : {true, false}) {
        SimConfig cfg = testing::toy_config();
        cfg.port_bandwidth = gbps(0.8);
        cfg.skip_quiescent_epochs = skip;
        cfg.event_driven = event;

        // Legacy side channels.
        auto s1 = matrix_scheduler(which, true);
        Engine legacy(t, *s1, cfg);
        for (const auto& ev : dynamics) legacy.add_dynamics_event(ev);
        for (const auto& [id, when] : gates) {
          legacy.set_data_available_at(CoflowId{id}, when);
        }
        const auto legacy_result = legacy.run();

        // The same workload as one event stream: arrivals carry their
        // data_ready, dynamics ride a ScriptSource.
        std::vector<WorkloadEvent> script;
        for (const auto& ev : dynamics) {
          script.push_back(WorkloadEvent::dynamics_at(ev));
        }
        auto arrivals = std::make_shared<workload::TraceSource>([&] {
          trace::Trace copy = t;
          return copy;
        }());
        auto merged = std::make_shared<workload::MergeSource>(
            std::vector<std::shared_ptr<workload::WorkloadSource>>{
                arrivals, std::make_shared<workload::ScriptSource>(
                              "script", ports, std::move(script))},
            /*reassign_ids=*/false);
        auto s2 = matrix_scheduler(which, true);
        Engine streamed(merged, *s2, cfg);
        for (const auto& [id, when] : gates) {
          streamed.set_data_available_at(CoflowId{id}, when);
        }
        const auto streamed_result = streamed.run();
        expect_identical(legacy_result, streamed_result,
                         which + (skip ? "/skip" : "/noskip") +
                             (event ? "/event" : "/scan"));
      }
    }
  }
}

TEST(StreamIdentity, DataGatesCarriedOnArrivalEvents) {
  // The same gates, this time carried as WorkloadEvent::data_ready +
  // explicit kDataAvailable releases — no engine setters at all.
  const int ports = 8;
  auto t = testing::make_trace(
      ports, {testing::make_coflow(0, 0, {{0, 1, 30 * kMB}}),
              testing::make_coflow(1, msec(40), {{2, 3, 30 * kMB}}),
              testing::make_coflow(2, msec(80), {{4, 5, 15 * kMB}})});

  SaathScheduler s1;
  SimConfig cfg;
  Engine legacy(t, s1, cfg);
  legacy.set_data_available_at(CoflowId{1}, msec(300));
  legacy.set_data_available_at(CoflowId{2}, msec(450));
  const auto legacy_result = legacy.run();

  std::vector<WorkloadEvent> events;
  for (const auto& spec : t.coflows) {
    WorkloadEvent ev = WorkloadEvent::arrival(spec);
    if (spec.id.value == 1) ev.data_ready = msec(300);
    if (spec.id.value == 2) ev.data_ready = kNever;  // explicit release below
    events.push_back(std::move(ev));
  }
  events.push_back(WorkloadEvent::data_available(CoflowId{2}, msec(450)));
  SaathScheduler s2;
  const auto streamed_result =
      simulate(std::make_shared<workload::ScriptSource>("gated", ports,
                                                        std::move(events)),
               s2, cfg);
  expect_identical(legacy_result, streamed_result, "data_ready arrivals");
}

TEST(StreamIdentity, GateReleaseInTheSameEpochPullIsNotClobbered) {
  // Arrival (gated until an explicit event) and its kDataAvailable release
  // land in the same epoch's due-event pull: the admission must not
  // clobber the already-recorded release with the arrival's kNever, or
  // the CoFlow stays gated forever and the run hits max_sim_time.
  std::vector<WorkloadEvent> events;
  WorkloadEvent gated = WorkloadEvent::arrival(
      testing::make_coflow(0, msec(10), {{0, 1, 5 * kMB}}));
  gated.data_ready = kNever;
  events.push_back(std::move(gated));
  events.push_back(WorkloadEvent::data_available(CoflowId{0}, msec(10)));
  SaathScheduler sched;
  SimConfig cfg;
  cfg.max_sim_time = seconds(60);
  const auto result = simulate(
      std::make_shared<workload::ScriptSource>("same-epoch", 4,
                                               std::move(events)),
      sched, cfg);
  ASSERT_EQ(result.coflows.size(), 1u);
  EXPECT_GT(result.coflows[0].finish, msec(10));
}

TEST(MergeSource, RemapsDataAvailableReleasesUnderReassignment) {
  // Under dense re-identification the release must follow its arrival into
  // the new id space, or it releases a stale id and the real CoFlow hangs.
  std::vector<WorkloadEvent> scripted;
  WorkloadEvent gated = WorkloadEvent::arrival(
      testing::make_coflow(7, msec(20), {{2, 3, 5 * kMB}}));
  gated.data_ready = kNever;
  scripted.push_back(std::move(gated));
  scripted.push_back(WorkloadEvent::data_available(CoflowId{7}, msec(400)));
  auto merged = std::make_shared<workload::MergeSource>(
      std::vector<std::shared_ptr<workload::WorkloadSource>>{
          std::make_shared<workload::TraceSource>(testing::make_trace(
              4, {testing::make_coflow(0, 0, {{0, 1, 5 * kMB}})})),
          std::make_shared<workload::ScriptSource>("gated", 4,
                                                   std::move(scripted))});
  SaathScheduler sched;
  SimConfig cfg;
  cfg.max_sim_time = seconds(60);
  const auto result = simulate(merged, sched, cfg);
  ASSERT_EQ(result.coflows.size(), 2u);
  // The gated CoFlow (re-identified id 1) starts only at its 400ms release.
  EXPECT_GE(result.coflows[1].finish, msec(400));
}

// ------------------------------------------------------------ SynthSource

TEST(SynthSource, StreamedEqualsMaterializedThenReplayed) {
  workload::SynthStreamConfig cfg;
  cfg.shape.num_ports = 24;
  cfg.num_coflows = 150;
  cfg.seed = 5;
  cfg.mean_gap = msec(25);

  // Event-level equivalence: the same seeded config materialized into a
  // trace replays as the identical arrival stream.
  workload::SynthSource direct(cfg);
  workload::SynthSource for_trace(cfg);
  auto materialized = workload::materialize_arrivals(for_trace);
  ASSERT_EQ(materialized.coflows.size(), 150u);
  workload::TraceSource replay{trace::Trace(materialized)};
  while (direct.peek_next_time() != kNever) {
    ASSERT_EQ(direct.peek_next_time(), replay.peek_next_time());
    const auto a = direct.next();
    const auto b = replay.next();
    ASSERT_EQ(a.coflow.id, b.coflow.id);
    ASSERT_EQ(a.coflow.arrival, b.coflow.arrival);
    ASSERT_EQ(a.coflow.flows.size(), b.coflow.flows.size());
    for (std::size_t f = 0; f < a.coflow.flows.size(); ++f) {
      EXPECT_EQ(a.coflow.flows[f].src, b.coflow.flows[f].src);
      EXPECT_EQ(a.coflow.flows[f].dst, b.coflow.flows[f].dst);
      EXPECT_EQ(a.coflow.flows[f].size, b.coflow.flows[f].size);
    }
  }
  EXPECT_EQ(replay.peek_next_time(), kNever);

  // Engine-level equivalence, both schedulers.
  for (const std::string which : {"saath", "aalo"}) {
    auto s1 = matrix_scheduler(which, true);
    auto s2 = matrix_scheduler(which, true);
    const auto streamed =
        simulate(std::make_shared<workload::SynthSource>(cfg), *s1, {});
    const auto replayed = simulate(materialized, *s2, {});
    expect_identical(streamed, replayed, "synth engine/" + which);
  }
}

TEST(SynthSource, ArrivalsAreMonotoneWithAscendingIds) {
  workload::SynthStreamConfig cfg;
  cfg.shape.num_ports = 12;
  cfg.num_coflows = 400;
  cfg.seed = 9;
  cfg.mean_gap = usec(800);
  cfg.p_burst = 0.7;  // plenty of same-instant ties
  cfg.burst_gap = usec(1);
  workload::SynthSource src(cfg);
  SimTime last = 0;
  std::int64_t last_id = -1;
  while (src.peek_next_time() != kNever) {
    const auto ev = src.next();
    EXPECT_GE(ev.time, last);
    EXPECT_GT(ev.coflow.id.value, last_id);
    last = ev.time;
    last_id = ev.coflow.id.value;
  }
  EXPECT_EQ(last_id, 399);
}

// ----------------------------------------------------------- combinators

TEST(ScaleArrivals, MatchesMaterializedScaledTrace) {
  const auto t = matrix_trace();
  auto shared = std::make_shared<const trace::Trace>(t);
  for (const double a : {0.5, 2.0, 4.0}) {
    SaathScheduler s1;
    SaathScheduler s2;
    const auto materialized = simulate(t.scaled_arrivals(a), s1, {});
    const auto streamed = simulate(
        std::make_shared<workload::ScaleArrivals>(
            std::make_shared<workload::TraceSource>(shared), a),
        s2, {});
    expect_identical(materialized, streamed, "scale " + std::to_string(a));
  }
}

TEST(ScaleArrivals, CollapsedTicksKeepArrivalTiesAscendingById) {
  // Heavy compression maps distinct inner instants onto one output
  // microsecond; with a jittered inner the pre-fix emission order could
  // put a higher id first at the collapsed tick and abort the engine's
  // ordering spot-check. The one-tick batch re-sort must keep ids
  // ascending at ties and the run alive.
  auto t = matrix_trace();
  auto scaled = std::make_shared<workload::ScaleArrivals>(
      std::make_shared<workload::JitterSource>(
          std::make_shared<workload::TraceSource>(std::move(t)), usec(500),
          42),
      1000.0);
  SimTime last = 0;
  std::int64_t last_id_at_time = -1;
  std::int64_t seen = 0;
  while (scaled->peek_next_time() != kNever) {
    const auto ev = scaled->next();
    ASSERT_GE(ev.time, last);
    if (ev.time != last) last_id_at_time = -1;
    ASSERT_GT(ev.coflow.id.value, last_id_at_time);
    last = ev.time;
    last_id_at_time = ev.coflow.id.value;
    ++seen;
  }
  EXPECT_EQ(seen, 120);

  // And end to end through the engine (the spot-check lives there).
  auto t2 = matrix_trace();
  auto again = std::make_shared<workload::ScaleArrivals>(
      std::make_shared<workload::JitterSource>(
          std::make_shared<workload::TraceSource>(std::move(t2)), usec(500),
          42),
      1000.0);
  SaathScheduler sched;
  EXPECT_EQ(simulate(again, sched, {}).coflows.size(), 120u);
}

TEST(JitterSource, EmitsOrderedStreamAndPreservesWorkload) {
  auto t = matrix_trace();
  const std::size_t n = t.coflows.size();
  auto jittered = std::make_shared<workload::JitterSource>(
      std::make_shared<workload::TraceSource>(std::move(t)), msec(500), 13);
  SimTime last = 0;
  std::int64_t seen = 0;
  std::int64_t last_id_at_time = -1;
  while (jittered->peek_next_time() != kNever) {
    const auto ev = jittered->next();
    ASSERT_GE(ev.time, last);
    if (ev.time != last) last_id_at_time = -1;
    EXPECT_GT(ev.coflow.id.value, last_id_at_time);
    last_id_at_time = ev.coflow.id.value;
    EXPECT_EQ(ev.coflow.arrival, ev.time);
    last = ev.time;
    ++seen;
  }
  EXPECT_EQ(seen, static_cast<std::int64_t>(n));

  // Deterministic under the seed: same source, same stream.
  auto t2 = matrix_trace();
  auto again = std::make_shared<workload::JitterSource>(
      std::make_shared<workload::TraceSource>(std::move(t2)), msec(500), 13);
  SaathScheduler s1;
  SaathScheduler s2;
  auto t3 = matrix_trace();
  auto once_more = std::make_shared<workload::JitterSource>(
      std::make_shared<workload::TraceSource>(std::move(t3)), msec(500), 13);
  expect_identical(simulate(again, s1, {}), simulate(once_more, s2, {}),
                   "jitter determinism");
}

TEST(MergeSource, OrdersAcrossChildrenAndRoutesCompletions) {
  auto a = testing::make_trace(
      6, {testing::make_coflow(0, msec(10), {{0, 1, 5 * kMB}}),
          testing::make_coflow(1, msec(30), {{2, 3, 5 * kMB}})});
  a.name = "tenant-a";
  JobSpec job;
  job.id = JobId{9};
  job.arrival = msec(20);
  job.stages.push_back({{{4, 5, 5 * kMB}}, {}});
  job.stages.push_back({{{5, 4, 2 * kMB}}, {0}});
  auto dag = std::make_shared<workload::DagSource>("tenant-dag", 6);
  dag->add_job(job);

  auto merged = std::make_shared<workload::MergeSource>(
      std::vector<std::shared_ptr<workload::WorkloadSource>>{
          std::make_shared<workload::TraceSource>(std::move(a)), dag});
  EXPECT_EQ(merged->num_ports(), 6);

  SaathScheduler sched;
  const auto result = simulate(merged, sched, {});
  // 2 trace coflows + 2 dag stages, re-identified densely in emission order.
  ASSERT_EQ(result.coflows.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.coflows[i].id.value, static_cast<std::int64_t>(i));
  }
  // Completion routing restored the child's ids: the dag finished both
  // stages (it would stall forever if records reached it re-identified).
  EXPECT_TRUE(dag->all_jobs_finished());
  EXPECT_GT(dag->job_finish_time(JobId{9}), msec(20));
}

// ------------------------------------------------------------- DagSource

TEST(DagSource, MatchesHandRolledInjectCallback) {
  JobSpec job;
  job.id = JobId{1};
  job.stages.push_back({{{0, 4, 20 * kMB}, {1, 5, 20 * kMB}}, {}});
  job.stages.push_back({{{4, 2, 8 * kMB}}, {0}});
  job.stages.push_back({{{5, 3, 12 * kMB}}, {0}});
  job.stages.push_back({{{2, 6, 4 * kMB}, {3, 6, 4 * kMB}}, {1, 2}});
  job.validate();

  // Reference: the dag_pipeline example's manual wiring.
  trace::Trace t;
  t.name = "dag";
  t.num_ports = 8;
  JobTracker tracker(job);
  t.coflows.push_back(tracker.make_coflow(0, CoflowId{0}, 0));
  tracker.mark_released(0);
  SaathScheduler s1;
  Engine manual(t, s1, {});
  std::int64_t next_id = 1;
  manual.set_completion_callback([&](const CoflowRecord& rec, SimTime now,
                                     Engine& eng) {
    if (rec.job != job.id) return;
    for (int stage : tracker.mark_finished(rec.stage, now)) {
      eng.inject_coflow(tracker.make_coflow(stage, CoflowId{next_id++}, now));
      tracker.mark_released(stage);
    }
  });
  const auto manual_result = manual.run();

  auto dag = std::make_shared<workload::DagSource>("dag", 8);
  dag->add_job(job);
  SaathScheduler s2;
  const auto source_result = simulate(dag, s2, {});
  expect_identical(manual_result, source_result, "dag vs inject");
  EXPECT_TRUE(dag->all_jobs_finished());
  EXPECT_EQ(dag->job_finish_time(JobId{1}), source_result.makespan);
}

// ----------------------------------------------- injection + move-out heap

TEST(Injection, MergesWithSourceArrivalsByArrivalThenId) {
  // Source arrival id 1 and injected ids 0 and 2, all at the same instant:
  // admission must interleave by id, reproducing the old single-queue
  // semantics.
  auto t = testing::make_trace(
      6, {testing::make_coflow(0, 0, {{0, 1, 10 * kMB}}),
          testing::make_coflow(1, msec(500), {{2, 3, 10 * kMB}})});
  // make_trace re-ids densely: coflow 1 arrives at 500ms.
  SaathScheduler sched;
  Engine engine(t, sched, {});
  bool injected = false;
  engine.set_completion_callback([&](const CoflowRecord& rec, SimTime,
                                     Engine& eng) {
    if (injected || rec.id.value != 0) return;
    injected = true;
    CoflowSpec before = testing::make_coflow(10, msec(500), {{4, 5, 1 * kMB}});
    CoflowSpec after = testing::make_coflow(12, msec(500), {{0, 5, 1 * kMB}});
    eng.inject_coflow(before);
    eng.inject_coflow(after);
  });
  const auto result = engine.run();
  ASSERT_EQ(result.coflows.size(), 4u);
  EXPECT_GE(engine.stats().injected_moves, 2);
  EXPECT_EQ(engine.stats().arrivals_admitted, 4);
}

TEST(Injection, HeapPopsInArrivalIdOrderAndMovesSpecs) {
  // Drive the injected heap hard through a DAG-style fan-out and check the
  // move counter accounts for every pop.
  auto t = testing::make_trace(
      8, {testing::make_coflow(0, 0, {{0, 1, 5 * kMB}})});
  SaathScheduler sched;
  Engine engine(t, sched, {});
  int released = 0;
  engine.set_completion_callback([&](const CoflowRecord& rec, SimTime now,
                                     Engine& eng) {
    if (rec.id.value != 0 || released > 0) return;
    // Inject out of id order at mixed arrivals; admission order must come
    // out (arrival, id)-sorted.
    for (const std::int64_t id : {7, 3, 5, 2, 9}) {
      eng.inject_coflow(testing::make_coflow(
          id, now + msec(10 * (id % 3)), {{static_cast<PortIndex>(id % 8),
                                           static_cast<PortIndex>((id + 1) % 8),
                                           1 * kMB}}));
    }
    released = 1;
  });
  const auto result = engine.run();
  ASSERT_EQ(result.coflows.size(), 6u);
  EXPECT_EQ(engine.stats().injected_moves, 5);
  // Records sort by id; arrival order is checked via arrival stamps:
  // ids {3, 9} at +0ms, {7} at +10ms, {2, 5} at +20ms.
  const auto* c3 = result.find(CoflowId{3});
  const auto* c9 = result.find(CoflowId{9});
  const auto* c7 = result.find(CoflowId{7});
  ASSERT_TRUE(c3 && c9 && c7);
  EXPECT_EQ(c3->arrival, c9->arrival);
  EXPECT_GT(c7->arrival, c3->arrival);
}

// ------------------------------------------------------ pre-run guardrails

using WorkloadDeathTest = ::testing::Test;

TEST(WorkloadDeathTest, AddDynamicsEventDuringRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto t = testing::make_trace(4,
                               {testing::make_coflow(0, 0, {{0, 1, 1 * kMB}})});
  SaathScheduler sched;
  Engine engine(t, sched, {});
  engine.set_completion_callback(
      [&](const CoflowRecord&, SimTime, Engine& eng) {
        eng.add_dynamics_event(
            {msec(1), DynamicsEvent::Kind::kNodeFailure, 0, 1.0});
      });
  EXPECT_DEATH((void)engine.run(), "pre-run only");
}

TEST(WorkloadDeathTest, SetDataAvailableDuringRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto t = testing::make_trace(4,
                               {testing::make_coflow(0, 0, {{0, 1, 1 * kMB}})});
  SaathScheduler sched;
  Engine engine(t, sched, {});
  engine.set_completion_callback(
      [&](const CoflowRecord&, SimTime, Engine& eng) {
        eng.set_data_available_at(CoflowId{5}, msec(10));
      });
  EXPECT_DEATH((void)engine.run(), "pre-run only");
}

TEST(WorkloadDeathTest, OutOfOrderSourceIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A ScriptSource cannot produce this (it sorts), so violate the invariant
  // with a raw event list replayed through a hostile source.
  class BadSource : public workload::WorkloadSource {
   public:
    [[nodiscard]] std::string name() const override { return "bad"; }
    [[nodiscard]] int num_ports() const override { return 4; }
    [[nodiscard]] SimTime peek_next_time() override {
      return emitted_ >= 2 ? kNever : (emitted_ == 0 ? msec(100) : msec(5));
    }
    [[nodiscard]] WorkloadEvent next() override {
      const SimTime at = emitted_ == 0 ? msec(100) : msec(5);
      ++emitted_;
      return WorkloadEvent::arrival(
          testing::make_coflow(emitted_, at, {{0, 1, 1 * kMB}}));
    }

   private:
    int emitted_ = 0;
  };
  SaathScheduler sched;
  Engine engine(std::make_shared<BadSource>(), sched, {});
  EXPECT_DEATH((void)engine.run(), "non-decreasing");
}

// ------------------------------------------------------------ ResultSink

TEST(ResultSink, AggregatesWithoutMaterializingRecords) {
  const auto t = matrix_trace();
  SaathScheduler s1;
  const auto materialized = simulate(t, s1, {});

  SaathScheduler s2;
  SimConfig cfg;
  cfg.record_results = false;
  workload::CctAggregator agg;
  Engine engine(std::make_shared<workload::TraceSource>(trace::Trace(t)), s2,
                cfg);
  engine.set_result_sink(&agg);
  const auto streamed = engine.run();

  EXPECT_TRUE(streamed.coflows.empty());
  EXPECT_EQ(streamed.makespan, materialized.makespan);
  EXPECT_EQ(agg.makespan(), materialized.makespan);
  ASSERT_EQ(agg.count(),
            static_cast<std::int64_t>(materialized.coflows.size()));
  const auto summary = materialized.cct_summary();
  EXPECT_NEAR(agg.mean_cct_seconds(), summary.mean, summary.mean * 1e-9);
  // Histogram percentiles are approximate: bounded by the bucket ratio.
  EXPECT_NEAR(agg.percentile_cct_seconds(50), summary.p50,
              summary.p50 * 0.05 + 1e-6);
  EXPECT_NEAR(agg.percentile_cct_seconds(90), summary.p90,
              summary.p90 * 0.05 + 1e-6);
}

TEST(ResultSink, StreamingReclamationIsBitIdenticalAcrossSchedulers) {
  // record_results = false frees each finished CoflowState at the end of
  // the delta-consuming round. Saath drops its pointers at the completion
  // hook; Aalo only at the next schedule() — both must aggregate the exact
  // same CCT stream as the materialized run (ASan builds make this a
  // lifetime test as much as a correctness test).
  const auto t = matrix_trace();
  for (const std::string which : {"saath", "aalo"}) {
    for (const bool incremental : {true, false}) {
      auto s1 = matrix_scheduler(which, incremental);
      const auto materialized = simulate(t, *s1, {});

      auto s2 = matrix_scheduler(which, incremental);
      SimConfig cfg;
      cfg.record_results = false;
      workload::CctAggregator agg;
      Engine engine(std::make_shared<workload::TraceSource>(trace::Trace(t)),
                    *s2, cfg);
      engine.set_result_sink(&agg);
      const auto streamed = engine.run();

      EXPECT_TRUE(streamed.coflows.empty()) << which;
      EXPECT_EQ(agg.makespan(), materialized.makespan) << which;
      ASSERT_EQ(agg.count(),
                static_cast<std::int64_t>(materialized.coflows.size()))
          << which;
      const auto summary = materialized.cct_summary();
      EXPECT_NEAR(agg.mean_cct_seconds(), summary.mean, summary.mean * 1e-9)
          << which;
      // CoFlows finishing in the final advance are freed by the engine
      // destructor, after the last scheduling round — so reclaimed is
      // bounded by, not equal to, the completion count.
      EXPECT_GT(engine.stats().reclaimed_coflows, 0) << which;
      EXPECT_LE(engine.stats().reclaimed_coflows, agg.count()) << which;
    }
  }
}

TEST(ResultSink, SinkSeesRecordsEvenWhenMaterializing) {
  const auto t = matrix_trace();
  SaathScheduler sched;
  workload::CctAggregator agg;
  Engine engine(t, sched, {});
  engine.set_result_sink(&agg);
  const auto result = engine.run();
  EXPECT_EQ(agg.count(), static_cast<std::int64_t>(result.coflows.size()));
}

// ------------------------------------------------------ scenario registry

TEST(ScenarioRegistry, EveryBuiltinRunsEndToEnd) {
  workload::ScenarioParams small;
  small.set("coflows", "40");
  small.set("jobs", "2");
  for (const auto& info : workload::known_scenarios()) {
    const auto run = workload::run_scenario(info.name, small);
    EXPECT_FALSE(run.result.coflows.empty()) << info.name;
    EXPECT_GT(run.result.makespan, 0) << info.name;
    EXPECT_GT(run.stats.arrivals_admitted, 0) << info.name;
  }
}

TEST(ScenarioRegistry, UnknownScenarioThrowsWithKnownList) {
  EXPECT_THROW((void)workload::make_scenario("no-such-scenario"),
               std::invalid_argument);
}

TEST(ScenarioRegistry, UserScenariosRegisterAndOverrideParams) {
  workload::register_scenario(
      "test-tiny", "unit-test scenario",
      [](const workload::ScenarioParams& params) {
        workload::ScenarioSetup setup;
        setup.source = std::make_shared<workload::TraceSource>(
            trace::synth_small_trace(
                8, static_cast<int>(params.get_int("coflows", 5)), 3));
        return setup;
      });
  workload::ScenarioParams params;
  params.set("coflows", "7");
  const auto run = workload::run_scenario("test-tiny", params, "aalo");
  EXPECT_EQ(run.result.coflows.size(), 7u);
  EXPECT_EQ(run.result.scheduler, "aalo");
  bool found = false;
  for (const auto& info : workload::known_scenarios()) {
    found |= info.name == "test-tiny";
  }
  EXPECT_TRUE(found);
}

// --------------------------------------------- combinator edge conditions

TEST(JitterSource, ArrivalAtTimeZeroIsNeverShiftedNegative) {
  // t=0 arrivals sit on the clock's origin: jitter must only ever push them
  // forward, and the re-sort buffer must keep the (time, id) invariant even
  // when several origin arrivals land on distinct jittered instants.
  auto t = testing::make_trace(
      4, {testing::make_coflow(0, 0, {{0, 1, 100}}),
          testing::make_coflow(1, 0, {{1, 2, 100}}),
          testing::make_coflow(2, 0, {{2, 3, 100}}),
          testing::make_coflow(3, msec(5), {{3, 0, 100}})});
  auto jittered = std::make_shared<workload::JitterSource>(
      std::make_shared<workload::TraceSource>(std::move(t)), msec(20), 99);
  SimTime last = 0;
  std::int64_t last_id_at_time = -1;
  int seen = 0;
  while (jittered->peek_next_time() != kNever) {
    const auto ev = jittered->next();
    ASSERT_GE(ev.time, 0);
    ASSERT_GE(ev.time, last);
    if (ev.time != last) last_id_at_time = -1;
    EXPECT_GT(ev.coflow.id.value, last_id_at_time);
    last_id_at_time = ev.coflow.id.value;
    last = ev.time;
    ++seen;
  }
  EXPECT_EQ(seen, 4);

  // And with zero jitter the origin arrivals pass through untouched.
  auto t2 = testing::make_trace(
      4, {testing::make_coflow(0, 0, {{0, 1, 100}}),
          testing::make_coflow(1, 0, {{1, 2, 100}})});
  auto still = std::make_shared<workload::JitterSource>(
      std::make_shared<workload::TraceSource>(std::move(t2)), 0, 99);
  EXPECT_EQ(still->peek_next_time(), 0);
  EXPECT_EQ(still->next().coflow.id.value, 0);
  EXPECT_EQ(still->next().coflow.id.value, 1);
  EXPECT_EQ(still->peek_next_time(), kNever);
}

TEST(MergeSource, ChildExhaustionMidStreamKeepsTheMergeFlowing) {
  // The short child drains while the long child still has events: the merge
  // must neither stall nor re-emit at the boundary, and its peek must fall
  // through to the surviving child immediately.
  auto short_child = testing::make_trace(
      4, {testing::make_coflow(0, msec(1), {{0, 1, 100}})});
  auto long_child = testing::make_trace(
      4, {testing::make_coflow(0, msec(2), {{1, 2, 100}}),
          testing::make_coflow(1, msec(30), {{2, 3, 100}}),
          testing::make_coflow(2, msec(40), {{3, 0, 100}})});
  auto merged = std::make_shared<workload::MergeSource>(
      std::vector<std::shared_ptr<workload::WorkloadSource>>{
          std::make_shared<workload::TraceSource>(std::move(short_child)),
          std::make_shared<workload::TraceSource>(std::move(long_child))});
  std::vector<SimTime> times;
  while (merged->peek_next_time() != kNever) {
    times.push_back(merged->next().time);
  }
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], msec(1));  // short child's only event
  EXPECT_EQ(times[1], msec(2));  // boundary: merge continues seamlessly
  EXPECT_EQ(times[3], msec(40));
  EXPECT_EQ(merged->peek_next_time(), kNever);
}

/// Completion-recording wrapper: proves feedback reaches a child (with its
/// own id space restored) even after that child's stream has drained.
class CompletionProbe final : public workload::WorkloadSource {
 public:
  explicit CompletionProbe(std::shared_ptr<workload::WorkloadSource> inner)
      : inner_(std::move(inner)) {}
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] int num_ports() const override { return inner_->num_ports(); }
  [[nodiscard]] SimTime peek_next_time() override {
    return inner_->peek_next_time();
  }
  [[nodiscard]] workload::WorkloadEvent next() override {
    return inner_->next();
  }
  void on_coflow_complete(const CoflowRecord& rec, SimTime now) override {
    completed_ids.push_back(rec.id.value);
    inner_->on_coflow_complete(rec, now);
  }
  std::vector<std::int64_t> completed_ids;
 private:
  std::shared_ptr<workload::WorkloadSource> inner_;
};

TEST(MergeSource, RoutesCompletionsToADrainedChild) {
  // The probe child's arrivals are early and tiny; by the time they finish,
  // the child is long exhausted. The merge must still route each completion
  // back with the child's original (pre-reassignment) id.
  auto probe = std::make_shared<CompletionProbe>(
      std::make_shared<workload::TraceSource>(testing::make_trace(
          6, {testing::make_coflow(0, 0, {{0, 1, 1 * kMB}}),
              testing::make_coflow(1, 0, {{2, 3, 1 * kMB}})})));
  auto other = testing::make_trace(
      6, {testing::make_coflow(0, msec(5), {{4, 5, 40 * kMB}})});
  auto merged = std::make_shared<workload::MergeSource>(
      std::vector<std::shared_ptr<workload::WorkloadSource>>{
          probe, std::make_shared<workload::TraceSource>(std::move(other))});
  SaathScheduler sched;
  const auto result = simulate(merged, sched, {});
  ASSERT_EQ(result.coflows.size(), 3u);
  // Original child ids 0 and 1, not the merge's dense re-identification.
  ASSERT_EQ(probe->completed_ids.size(), 2u);
  EXPECT_EQ(std::min(probe->completed_ids[0], probe->completed_ids[1]), 0);
  EXPECT_EQ(std::max(probe->completed_ids[0], probe->completed_ids[1]), 1);
}

// ------------------------------------------------- strict scenario params

TEST(ScenarioParams, MalformedValueThrowsNamingKeyAndValue) {
  workload::ScenarioParams params;
  params.set("coflows", "12abc");
  try {
    (void)params.get_int("coflows", 1);
    FAIL() << "malformed integer should throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("coflows"), std::string::npos) << what;
    EXPECT_NE(what.find("12abc"), std::string::npos) << what;
  }
  params.set("rate", "fast");
  EXPECT_THROW((void)params.get_double("rate", 1.0), std::invalid_argument);
  // Well-formed values still parse (negative integers stay valid).
  params.set("n", "-42");
  EXPECT_EQ(params.get_int("n", 0), -42);
}

TEST(ScenarioParams, RunScenarioRejectsUnconsumedKeys) {
  workload::ScenarioParams params;
  params.set("coflows", "20");
  params.set("coflow", "99");  // the classic typo
  try {
    (void)workload::run_scenario("steady-churn", params);
    FAIL() << "unknown key should throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("coflow"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioParams, UniversalKeysPassEverywhere) {
  // CI matrices pass seed/ports/coflows/jobs to every scenario; a scenario
  // reading none of them must not reject the set.
  workload::ScenarioParams params;
  params.set("seed", "3");
  params.set("ports", "16");
  params.set("coflows", "20");
  params.set("jobs", "2");
  for (const auto& info : workload::known_scenarios()) {
    EXPECT_NO_THROW((void)workload::run_scenario(info.name, params))
        << info.name;
  }
}

}  // namespace
}  // namespace saath

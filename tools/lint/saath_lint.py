#!/usr/bin/env python3
"""saath_lint: repo-specific static invariant checks for the Saath tree.

Machine-enforces the prose invariants ROADMAP.md's design notes state but
the compiler cannot see:

  lane-access           FlowPool's SoA lane pointers (rate, finished, ...)
                        are an audited read-only fast path. Reads outside
                        src/coflow/ are allowed only in the allowlisted
                        dense-walk consumers; writes are allowed only in
                        src/coflow/ itself (lanes alias FlowState fields —
                        a stray write desyncs the AoS view and the replay
                        digests with it).
  scheduler-retention   Scheduler subclasses must not retain CoflowState*/
                        FlowState* data members: the engine's streaming
                        reclamation frees finished CoflowStates right after
                        the round's result-sink flush, so a pointer kept
                        across rounds dangles. Audited per-round scratch
                        (cleared before reuse) is allowlisted by name.
  hot-noalloc           Functions annotated SAATH_HOT_NOALLOC (see
                        src/common/expect.h) are steady-state hot paths
                        whose allocations were deliberately hoisted into
                        reused member scratch. `new`/make_unique/malloc and
                        growth of function-local std:: containers without a
                        same-body reserve() are flagged. The runtime
                        complement is tests/alloc_steady_test.cc; this is
                        the static half that names the offending line.
  digest-float          src/coflow/ + src/fabric/ compute the quantities
                        the replay digests are pinned on. `float` (storage
                        or narrowing) and explicit fma() both produce
                        results that differ across toolchains/arch levels,
                        which forks the digest — double-only arithmetic
                        with -ffp-contract=off (set in CMakeLists.txt) is
                        the contract.
  service-detach        src/service/ runs on threads the engine knows
                        nothing about: the daemon's reader threads and the
                        result-sink writer see engine output only as value
                        types (CoflowRecord, WorkloadEvent, SimResult).
                        Any CoflowState*/FlowState* in service code is a
                        cross-thread dangle waiting to happen — the engine
                        thread owns those objects and reclaims finished
                        ones right after the round's sink flush.
  flag-matrix           Every incremental/event-driven mode flag (the
                        bool incremental_* config knobs plus event_driven,
                        skip_quiescent_epochs, parallel_shards) must be
                        exercised by at least one test under tests/ — the
                        bit-identity oracle matrix is the only thing
                        keeping the delta paths honest.

Design: the default backend is a self-contained lexer (comment/string
stripping + brace matching) so the lint runs anywhere Python does — the CI
containers and dev images do not all ship clang. When libclang Python
bindings ARE importable, `--ast auto` (default) additionally cross-checks
lane-access receivers by real type; `--ast require` fails if the bindings
are missing; `--ast off` never tries. The lexer findings are authoritative
either way: the AST layer can only add findings, never mask one.

Suppression: append `// SAATH_LINT_OK(check-id): reason` on the offending
line (or the line directly above). The reason is mandatory; a reasonless
suppression is itself reported (bad-suppression).

Exit codes: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

CHECK_IDS = (
    "lane-access",
    "scheduler-retention",
    "service-detach",
    "hot-noalloc",
    "digest-float",
    "flag-matrix",
)

# FlowPool's public SoA lanes (src/coflow/flow_pool.h). Accessed as
# `pool.rate[i]` / `pool->rate[i]`; plain scalar fields named src/dst
# elsewhere never take a subscript, so the trailing `[` disambiguates.
LANES = (
    "size_bytes",
    "sent_base",
    "rate",
    "anchor",
    "predicted_finish",
    "rate_version",
    "src",
    "dst",
    "finished",
)

# Audited dense-walk lane READERS outside src/coflow/ (ROADMAP: FlowPool
# handle/lane/index invariants). Writes are not allowlisted anywhere
# outside src/coflow/.
LANE_READ_ALLOWLIST = {
    "src/sched/saath.cc",
    "src/sched/alloc.cc",
    "src/sched/order_index.cc",
}

# Audited per-round scratch members that hold CoflowState*/FlowState*
# inside Scheduler subclasses: rebuilt or cleared every schedule() round,
# never read across the engine's reclamation point. Keyed by file so a new
# scheduler cannot inherit an exemption by reusing a name.
RETENTION_ALLOWLIST = {
    "src/sched/saath.h": {
        "candidates_", "touch_only_", "entered_", "prime_entries_",
        "order_scratch_", "missed_scratch_", "recross_",
        "sync_active_data_",
        # RankRecord::coflow / ConserveRecord::{coflow,flow}: entries of
        # rank_records_/conserve_cache_, invalidated by trajectory version
        # before any cross-round reuse.
        "coflow", "flow",
    },
    "src/sched/aalo.h": {"sort_scratch_"},
    "src/sched/uc_tcp.h": {"flows_", "owners_"},
}

# Mode flags that must appear in the digest-matrix tests, beyond the
# auto-discovered `bool incremental_*` config knobs.
NAMED_MODE_FLAGS = ("event_driven", "skip_quiescent_epochs",
                    "parallel_shards")

ALLOC_CALL_RE = re.compile(
    r"\bnew\b(?!\s*\()"          # new T / new T[n]; `new (addr) T` too —
    r"|\bnew\s*\("               # placement new is still a red flag here
    r"|\bmake_unique\s*<"
    r"|\bmake_shared\s*<"
    r"|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(")

GROWTH_METHODS = ("push_back", "emplace_back", "emplace", "insert",
                  "resize", "append")

CONTAINER_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(?:vector|deque|list|string|basic_string|map|multimap|set|multiset|"
    r"unordered_map|unordered_set)\s*<[^;(){}]*>\s*(&?)\s*(\w+)\s*[;=({]")

LANE_ACCESS_RE = re.compile(
    r"\b(\w+(?:\(\))?)\s*(?:\.|->)\s*(" + "|".join(LANES) + r")\s*\[")

FLOWPOOL_DECL_RE = re.compile(r"\bFlowPool\s*[&*]?\s*(\w+)\b")

SUPPRESS_RE = re.compile(r"SAATH_LINT_OK\(([\w-]+)\)\s*(?::\s*(.*?))?\s*(?:\*/|$)")
LINT_AS_RE = re.compile(r"//\s*LINT-AS:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*EXPECT-LINT:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")


@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


@dataclass
class LintFile:
    path: str          # repo-relative posix path (fixtures: LINT-AS path)
    raw: str
    code: str = ""     # comments/strings blanked, newlines preserved
    # line -> set of suppressed check ids (or {"*"}): line itself + next
    suppressions: dict = field(default_factory=dict)
    bad_suppressions: list = field(default_factory=list)


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals, preserving newlines and
    column positions so regex line/offset math stays true to the source."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append(text[i] if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"':
            # Raw strings R"delim(...)delim" can span lines.
            if out and out[-1] == "R":
                m = re.match(r'R"([^(\s]*)\(', text[i - 1:])
                if m:
                    end = text.find(f'){m.group(1)}"', i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    while i < end and i < n:
                        out.append(text[i] if text[i] == "\n" else " ")
                        i += 1
                    continue
            out.append('"')
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    out.append(" ")
                    i += 1
                    if i < n:
                        out.append(" " if text[i] != "\n" else "\n")
                        i += 1
                    continue
                out.append(" " if text[i] != "\n" else "\n")
                i += 1
            if i < n:
                out.append('"')
                i += 1
        elif c == "'":
            out.append("'")
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                out.append(" ")
                i += 1
            if i < n:
                out.append("'")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_file(path, disk_path):
    with open(disk_path, encoding="utf-8", errors="replace") as fh:
        raw = fh.read()
    lf = LintFile(path=path, raw=raw)
    lf.code = strip_comments_and_strings(raw)
    for lineno, line in enumerate(raw.splitlines(), 1):
        if "SAATH_LINT_OK(" not in line:
            continue  # prose mention, not a marker (markers take a check id)
        m = SUPPRESS_RE.search(line)
        if not m:
            lf.bad_suppressions.append(
                (lineno, "malformed SAATH_LINT_OK marker"))
            continue
        check, reason = m.group(1), (m.group(2) or "").strip()
        if check not in CHECK_IDS and check != "*":
            lf.bad_suppressions.append(
                (lineno, f"unknown check id '{check}'"))
            continue
        if not reason:
            lf.bad_suppressions.append(
                (lineno, f"SAATH_LINT_OK({check}) without a reason"))
            continue
        for covered in (lineno, lineno + 1):
            lf.suppressions.setdefault(covered, set()).add(check)
    return lf


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_forward(code, start, open_ch, close_ch):
    """Index just past the close_ch matching the open_ch at `start`."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


# --------------------------------------------------------------- lane-access

def check_lane_access(lf, findings):
    if lf.path.startswith(("tests/", "tools/")):
        return
    in_coflow = lf.path.startswith("src/coflow/")
    if in_coflow:
        return  # lanes live here; reads and writes are the point
    pool_vars = set(FLOWPOOL_DECL_RE.findall(lf.code))
    for m in LANE_ACCESS_RE.finditer(lf.code):
        recv, lane = m.group(1), m.group(2)
        base = recv[:-2] if recv.endswith("()") else recv
        if base not in pool_vars and "pool" not in base.lower():
            continue  # receiver is provably not a FlowPool handle-alias
        lineno = line_of(lf.code, m.start())
        # Classify read vs write: find the subscript's closing bracket and
        # look at what follows (or at a preceding ++/--).
        close = match_forward(lf.code, m.end() - 1, "[", "]")
        tail = lf.code[close:close + 3].lstrip()
        pre = lf.code[max(0, m.start() - 2):m.start()]
        is_write = (pre in ("++", "--")
                    or tail.startswith(("++", "--", "+=", "-=", "*=", "/="))
                    or (tail.startswith("=") and not tail.startswith("==")))
        if is_write:
            findings.append(Finding(
                lf.path, lineno, "lane-access",
                f"write through FlowPool lane '{lane}' outside src/coflow/ "
                "— lanes alias FlowState; mutate via the FlowPool API"))
        elif lf.path not in LANE_READ_ALLOWLIST:
            findings.append(Finding(
                lf.path, lineno, "lane-access",
                f"direct FlowPool lane read '{recv}.{lane}[...]' outside "
                "the audited dense-walk consumers "
                f"({', '.join(sorted(LANE_READ_ALLOWLIST))}) — use the "
                "FlowState accessors or get the file audited and "
                "allowlisted in tools/lint/saath_lint.py"))


# ------------------------------------------------------- scheduler-retention

SUBCLASS_RE = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*public\s+(\w*Scheduler)\b[^{;]*\{")


def member_statements(code, body_start):
    """Yields (stmt_text, line) for member-level declarations inside a
    class body opening at `body_start` (index of '{'), recursing into
    nested struct/class bodies and skipping method bodies/initializers."""
    i = body_start + 1
    end = match_forward(code, body_start, "{", "}") - 1
    stmt_begin = i
    stmt = []
    while i < end:
        c = code[i]
        if c == "{":
            head = "".join(stmt).lstrip()
            if re.match(r"(?:struct|class|union|enum)\b", head):
                yield from member_statements(code, i)
            i = match_forward(code, i, "{", "}")
            stmt = []
            stmt_begin = i
            # function bodies are not ';'-terminated: swallow one if present
            if i < end and code[i] == ";":
                i += 1
                stmt_begin = i
            continue
        if c == ";":
            text = "".join(stmt).strip()
            if text:
                yield text, line_of(code, stmt_begin)
            i += 1
            stmt = []
            stmt_begin = i
            continue
        if c == "(":  # skip parameter lists wholesale (decl stays one stmt)
            j = match_forward(code, i, "(", ")")
            stmt.append(code[i:j])
            i = j
            continue
        if c == ":" and "".join(stmt).strip() in ("public", "private",
                                                  "protected"):
            i += 1  # access specifier: not part of the next declaration
            stmt = []
            stmt_begin = i
            continue
        if not stmt:
            if c.isspace():
                i += 1
                continue
            stmt_begin = i
        stmt.append(c)
        i += 1


def check_scheduler_retention(lf, findings):
    if lf.path.startswith(("tests/", "tools/")):
        return
    allow = RETENTION_ALLOWLIST.get(lf.path, set())
    for m in SUBCLASS_RE.finditer(lf.code):
        cls = m.group(1)
        body_open = m.end() - 1  # SUBCLASS_RE ends at the class body '{'
        for stmt, lineno in member_statements(lf.code, body_open):
            if "(" in stmt:
                continue  # function declaration, not a data member
            compact = re.sub(r"\s+", "", stmt)
            if "CoflowState*" not in compact and "FlowState*" not in compact:
                continue
            name_m = re.search(r"(\w+)\s*(?:=[^=].*)?$", stmt)
            name = name_m.group(1) if name_m else "?"
            if name == "nullptr":
                nm = re.search(r"(\w+)\s*=", stmt)
                name = nm.group(1) if nm else name
            if name in allow:
                continue
            findings.append(Finding(
                lf.path, lineno, "scheduler-retention",
                f"Scheduler subclass {cls} holds raw state pointer member "
                f"'{name}' — the engine reclaims finished CoflowStates "
                "after each round (ROADMAP: ResultSink reclamation "
                "contract); keep per-round scratch only, and allowlist it "
                "with an audit note in tools/lint/saath_lint.py"))


# ------------------------------------------------------------ service-detach

STATE_PTR_RE = re.compile(
    r"\b(CoflowState|FlowState)\b(?:\s*\bconst\b)?\s*([*&])")


def check_service_detach(lf, findings):
    """src/service/ must stay detached from engine-owned state objects.

    Unlike scheduler-retention (members of Scheduler subclasses only), this
    flags ANY pointer or reference to CoflowState/FlowState in the service
    tree — locals included. The service layer's reader threads and sink
    writer run concurrently with the engine thread that owns and reclaims
    those objects; even a short-lived alias races the round's streaming
    reclamation. Everything the service needs crosses as value types
    (CoflowRecord, WorkloadEvent, SimResult, EngineSnapshot)."""
    if not lf.path.startswith("src/service/"):
        return
    for m in STATE_PTR_RE.finditer(lf.code):
        kind = "pointer" if m.group(2) == "*" else "reference"
        findings.append(Finding(
            lf.path, line_of(lf.code, m.start()), "service-detach",
            f"service code takes a {kind} to engine-owned {m.group(1)} — "
            "the engine thread reclaims finished states after each round's "
            "sink flush, and service threads run concurrently with it; "
            "cross the boundary with value types (CoflowRecord, "
            "WorkloadEvent) instead"))


# ---------------------------------------------------------------- hot-noalloc

def annotated_bodies(code):
    """Yields (body_text, body_start_offset) for every function definition
    annotated SAATH_HOT_NOALLOC."""
    for m in re.finditer(r"\bSAATH_HOT_NOALLOC\b", code):
        i = m.end()
        n = len(code)
        # Walk to the body '{': first '{' at paren depth 0. Definitions
        # only — a ';' at depth 0 first means it was a declaration.
        depth = 0
        while i < n:
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif depth == 0 and c == ";":
                break
            elif depth == 0 and c == "{":
                end = match_forward(code, i, "{", "}")
                yield code[i:end], i
                break
            i += 1


def check_hot_noalloc(lf, findings):
    if lf.path.startswith(("tests/", "tools/")):
        return
    for body, base in annotated_bodies(lf.code):
        for m in ALLOC_CALL_RE.finditer(body):
            findings.append(Finding(
                lf.path, line_of(lf.code, base + m.start()), "hot-noalloc",
                f"allocation '{m.group(0).strip()}' inside a "
                "SAATH_HOT_NOALLOC function — hoist into reused member "
                "scratch (see tests/alloc_steady_test.cc)"))
        # Function-local owned std:: containers (reference bindings are
        # views of member scratch, not locals).
        locals_ = {nm for amp, nm in CONTAINER_DECL_RE.findall(body)
                   if not amp}
        reserved = {nm for nm in locals_
                    if re.search(rf"\b{nm}\s*\.\s*reserve\s*\(", body)}
        for nm in sorted(locals_ - reserved):
            for g in GROWTH_METHODS:
                gm = re.search(rf"\b{nm}\s*\.\s*{g}\s*\(", body)
                if gm:
                    findings.append(Finding(
                        lf.path, line_of(lf.code, base + gm.start()),
                        "hot-noalloc",
                        f"local container '{nm}' grows via {g}() with no "
                        "same-body reserve() in a SAATH_HOT_NOALLOC "
                        "function — reserve it or promote it to member "
                        "scratch"))
                    break


# --------------------------------------------------------------- digest-float

def check_digest_float(lf, findings):
    if not lf.path.startswith(("src/coflow/", "src/fabric/")):
        return
    for m in re.finditer(r"\bfloat\b", lf.code):
        findings.append(Finding(
            lf.path, line_of(lf.code, m.start()), "digest-float",
            "'float' in digest-bearing code — single precision narrows "
            "differently across toolchains and forks the replay digest; "
            "use double"))
    for m in re.finditer(r"\b(?:std\s*::\s*)?fmaf?\s*\(", lf.code):
        findings.append(Finding(
            lf.path, line_of(lf.code, m.start()), "digest-float",
            "explicit fused multiply-add in digest-bearing code — FMA "
            "contraction is disabled tree-wide (-ffp-contract=off) "
            "precisely so digests match across arch levels"))


# ---------------------------------------------------------------- flag-matrix

INCREMENTAL_DECL_RE = re.compile(r"\bbool\s+(incremental_\w+)\b")
NAMED_FLAG_RE = re.compile(
    r"\b(?:bool|int)\s+(" + "|".join(NAMED_MODE_FLAGS) + r")\b")


def check_flag_matrix(files, findings):
    flags = {}  # name -> (path, line) of first declaration
    test_blob = []
    for lf in files:
        if lf.path.startswith("tests/") and not \
                lf.path.startswith("tests/lint_fixtures/"):
            test_blob.append(lf.code)
        if not lf.path.endswith(".h") or not lf.path.startswith("src/"):
            continue
        for rx in (INCREMENTAL_DECL_RE, NAMED_FLAG_RE):
            for m in rx.finditer(lf.code):
                flags.setdefault(m.group(1),
                                 (lf.path, line_of(lf.code, m.start())))
    blob = "\n".join(test_blob)
    for name, (path, lineno) in sorted(flags.items()):
        if re.search(rf"\b{name}\b", blob):
            continue
        findings.append(Finding(
            path, lineno, "flag-matrix",
            f"mode flag '{name}' is exercised by no test under tests/ — "
            "every incremental/event-driven knob needs a digest-matrix "
            "test pinning it against its full-recompute oracle"))


# ------------------------------------------------------- optional AST backend

class AstBackend:
    """libclang cross-check for lane-access receiver types. Entirely
    optional: any import/parse failure degrades to the lexer-only result
    (which is authoritative). Never masks a lexer finding."""

    def __init__(self, compdb_path):
        self.ok = False
        self.why = ""
        try:
            import clang.cindex as cindex  # noqa: F401
            self.cindex = cindex
            self.compdb_path = compdb_path
            self.index = cindex.Index.create()
            self.ok = True
        except Exception as exc:  # ImportError, LibclangError, ...
            self.why = f"{type(exc).__name__}: {exc}"

    def extra_lane_findings(self, lf, root):
        if not self.ok or not lf.path.endswith(".cc"):
            return []
        try:
            args = self._args_for(lf.path)
            tu = self.index.parse(os.path.join(root, lf.path), args=args)
            out = []
            ck = self.cindex.CursorKind
            for cur in tu.cursor.walk_preorder():
                if cur.kind != ck.MEMBER_REF_EXPR:
                    continue
                if cur.spelling not in LANES:
                    continue
                base = next(iter(cur.get_children()), None)
                if base is None:
                    continue
                t = base.type.get_canonical().spelling
                if "FlowPool" not in t:
                    continue
                loc = cur.location
                if not loc.file or os.path.relpath(
                        loc.file.name, root) != lf.path:
                    continue
                if lf.path.startswith("src/coflow/") or \
                        lf.path in LANE_READ_ALLOWLIST:
                    continue
                out.append(Finding(
                    lf.path, loc.line, "lane-access",
                    f"(AST) FlowPool lane '{cur.spelling}' referenced "
                    "outside the audited consumers"))
            return out
        except Exception:
            return []  # cross-check only; the lexer already ran

    def _args_for(self, path):
        try:
            with open(self.compdb_path, encoding="utf-8") as fh:
                for entry in json.load(fh):
                    if entry.get("file", "").endswith(path):
                        args = entry.get("command", "").split()[1:]
                        return [a for a in args if a != "-c"
                                and not a.endswith(".cc")
                                and not a.endswith(".o") and a != "-o"]
        except Exception:
            pass
        return ["-std=c++20"]


# ------------------------------------------------------------------- drivers

def gather_repo_files(root, compdb):
    paths = set()
    if compdb and os.path.exists(compdb):
        try:
            with open(compdb, encoding="utf-8") as fh:
                for entry in json.load(fh):
                    p = os.path.relpath(
                        os.path.join(entry.get("directory", root),
                                     entry["file"]), root)
                    p = p.replace(os.sep, "/")
                    if not p.startswith(".."):
                        paths.add(p)
        except (OSError, ValueError, KeyError) as exc:
            print(f"saath_lint: warning: unreadable compdb {compdb}: {exc}",
                  file=sys.stderr)
    for sub, exts in (("src", (".cc", ".h")), ("tests", (".cc", ".h")),
                      ("examples", (".cpp", ".h")), ("bench", (".cpp", ".h"))):
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if rel_dir.startswith("tests/lint_fixtures"):
                continue
            for fn in filenames:
                if fn.endswith(exts):
                    paths.add(f"{rel_dir}/{fn}")
    files = []
    for p in sorted(paths):
        disk = os.path.join(root, p)
        if os.path.exists(disk):
            files.append(load_file(p, disk))
    return files


def run_checks(files, ast=None, root=None):
    findings = []
    for lf in files:
        check_lane_access(lf, findings)
        check_scheduler_retention(lf, findings)
        check_service_detach(lf, findings)
        check_hot_noalloc(lf, findings)
        check_digest_float(lf, findings)
        for lineno, msg in lf.bad_suppressions:
            findings.append(Finding(lf.path, lineno, "bad-suppression", msg))
        if ast is not None and ast.ok and root:
            findings.extend(ast.extra_lane_findings(lf, root))
    check_flag_matrix(files, findings)
    by_path = {lf.path: lf for lf in files}
    kept = []
    for f in findings:
        sup = by_path.get(f.path)
        ids = sup.suppressions.get(f.line, set()) if sup else set()
        if f.check in ids or "*" in ids:
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.check))
    return kept


def run_self_test(root):
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"saath_lint: no fixture dir at {fixture_dir}",
              file=sys.stderr)
        return 2
    files, expected = [], set()
    for fn in sorted(os.listdir(fixture_dir)):
        if not fn.endswith((".cc", ".h")):
            continue
        disk = os.path.join(fixture_dir, fn)
        with open(disk, encoding="utf-8") as fh:
            raw = fh.read()
        m = LINT_AS_RE.search(raw)
        if not m:
            print(f"saath_lint: fixture {fn} lacks a LINT-AS: header",
                  file=sys.stderr)
            return 2
        mapped = m.group(1)
        lf = load_file(mapped, disk)
        files.append(lf)
        for lineno, line in enumerate(raw.splitlines(), 1):
            em = EXPECT_RE.search(line)
            if em:
                for check in re.split(r"\s*,\s*", em.group(1)):
                    expected.add((mapped, lineno, check))
    actual = {(f.path, f.line, f.check) for f in run_checks(files)}
    missed = expected - actual
    surplus = actual - expected
    for path, line, check in sorted(missed):
        print(f"SELF-TEST MISS   {path}:{line}: expected [{check}] "
              "was not reported")
    for path, line, check in sorted(surplus):
        print(f"SELF-TEST EXTRA  {path}:{line}: unexpected [{check}]")
    total = len(expected)
    if missed or surplus:
        print(f"saath_lint --self-test: FAIL "
              f"({len(missed)} missed, {len(surplus)} unexpected, "
              f"{total} expectations)")
        return 1
    print(f"saath_lint --self-test: OK — all {total} seeded violations "
          "flagged, no extras, suppressions honored")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="saath_lint",
        description="Repo-specific static invariant checks for Saath.")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (narrows the .cc file set "
                         "and feeds the AST backend)")
    ap.add_argument("--ast", choices=("auto", "off", "require"),
                    default="auto",
                    help="libclang cross-check: auto = use if importable")
    ap.add_argument("--self-test", action="store_true",
                    help="run against tests/lint_fixtures/ and verify "
                         "every seeded violation is flagged")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in CHECK_IDS:
            print(c)
        return 0
    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)

    ast = None
    if args.ast != "off":
        ast = AstBackend(args.compdb or
                         os.path.join(root, "compile_commands.json"))
        if not ast.ok:
            if args.ast == "require":
                print(f"saath_lint: --ast require, but libclang is "
                      f"unavailable ({ast.why})", file=sys.stderr)
                return 2
            ast = None  # auto: silently fall back to the lexer backend

    files = gather_repo_files(root, args.compdb)
    if not files:
        print("saath_lint: no input files found", file=sys.stderr)
        return 2
    findings = run_checks(files, ast=ast, root=root)
    for f in findings:
        print(f.render())
    n_src = sum(1 for lf in files if not lf.path.startswith("tests/"))
    print(f"saath_lint: {len(findings)} finding(s) across {len(files)} "
          f"files ({n_src} non-test)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
